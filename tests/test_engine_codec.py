"""Wire-codec tests: bit-exact round-trips, stable dedup fingerprints,
frame integrity, and loud (never hanging) failure modes.

The cluster's cross-process parity contract stands on this codec: a
request must decode to exactly the tensors that were encoded (bit for
bit, dtype and shape included), and a result must round-trip outputs,
selections, stage traces and op counts without loss - over queues and
over the socket transport's length-prefixed frames alike.  A payload the
codec cannot trust (truncated bytes, version skew, checksum mismatch)
must raise a typed :class:`CodecError`, and a worker receiving one must
answer with an ``error`` message so the request's future *fails* instead
of hanging.
"""

import pickle
import queue
import struct

import numpy as np
import pytest

from repro.core.config import DlzsConfig, SofaConfig
from repro.core.pipeline import SofaAttention
from repro.engine.codec import (
    CODEC_VERSION,
    FRAME_HEADER_SIZE,
    CodecError,
    CodecVersionError,
    FrameChecksumError,
    FrameDecoder,
    FrameError,
    FrameVersionError,
    TruncatedFrameError,
    TruncatedPayloadError,
    decode_config,
    decode_request,
    decode_result,
    encode_config,
    encode_frame,
    encode_request,
    encode_result,
    request_fingerprint,
)
from repro.engine.serving import AttentionRequest
from repro.utils.rng import make_rng

CFG = SofaConfig(tile_cols=16, top_k=0.5)


def _request(rng, s=32, h=8, dk=8, t=3, **kwargs):
    return AttentionRequest(
        tokens=rng.integers(-100, 100, size=(s, h)).astype(np.float64),
        q=rng.normal(size=(t, dk)),
        wk=rng.normal(size=(h, dk)),
        wv=rng.normal(size=(h, dk)),
        **kwargs,
    )


def test_request_round_trip_bit_exact():
    rng = make_rng(3)
    req = _request(
        rng,
        k_scale=0.25,
        v_scale=1.5,
        v=rng.normal(size=(32, 8)),
        config=SofaConfig(tile_cols=8, top_k=4, dlzs=DlzsConfig(token_bits=6)),
        tag="req-0",
        cache_key=("session", 2, 5),
        deadline=123.5,
    )
    back = decode_request(encode_request(req))
    for name in ("tokens", "q", "wk", "wv", "v"):
        a, b = getattr(req, name), getattr(back, name)
        assert a.tobytes() == b.tobytes() and a.dtype == b.dtype and a.shape == b.shape
    assert back.k_scale == req.k_scale and back.v_scale == req.v_scale
    assert back.config == req.config
    assert back.tag == req.tag
    assert back.cache_key == req.cache_key
    assert back.deadline == req.deadline


def test_request_round_trip_defaults_and_non_contiguous():
    rng = make_rng(4)
    wide = rng.normal(size=(8, 16))
    req = AttentionRequest(
        tokens=rng.integers(-5, 5, size=(12, 8)).astype(np.float32),
        q=rng.normal(size=(2, 8))[:, ::-1],  # negative-stride view
        wk=wide[:, ::2],  # non-contiguous columns
        wv=wide[:, 1::2],
    )
    back = decode_request(encode_request(req))
    assert back.tokens.dtype == np.float32
    assert np.array_equal(back.q, np.asarray(req.q))
    assert np.array_equal(back.wk, np.asarray(req.wk))
    assert back.v is None and back.config is None and back.cache_key is None


def test_result_round_trip_preserves_traces_and_ops():
    rng = make_rng(5)
    req = _request(rng)
    result = SofaAttention(req.wk, req.wv, CFG)(req.tokens, req.q)
    back = decode_result(encode_result(result))
    assert back.output.tobytes() == result.output.tobytes()
    assert np.array_equal(back.selected, result.selected)
    assert back.assurance_triggers == result.assurance_triggers
    assert [s.name for s in back.stages] == [s.name for s in result.stages]
    for a, b in zip(result.stages, back.stages):
        assert a.ops.counts == b.ops.counts
        assert a.dram_bytes == b.dram_bytes
        assert a.sram_peak_bytes == b.sram_peak_bytes
    assert back.total_ops.counts == result.total_ops.counts
    assert np.array_equal(back.reference_mask, result.reference_mask)


def test_config_codec_none_and_nested():
    assert encode_config(None) is None and decode_config(None) is None
    cfg = SofaConfig(tile_cols=4, top_k=2)
    assert decode_config(encode_config(cfg)) == cfg


def test_version_mismatch_rejected():
    rng = make_rng(6)
    payload = encode_request(_request(rng))
    payload["v"] = CODEC_VERSION + 1
    with pytest.raises(CodecVersionError, match="version"):
        decode_request(payload)
    res = encode_result(SofaAttention(
        _request(rng).wk, _request(rng).wv, CFG
    )(_request(rng).tokens, _request(rng).q))
    res["v"] = 0
    with pytest.raises(CodecVersionError, match="version"):
        decode_result(res)
    # CodecError subclasses ValueError, so pre-existing handlers still fire
    assert issubclass(CodecVersionError, ValueError)


def test_truncated_tensor_payload_rejected_with_byte_counts():
    rng = make_rng(61)
    payload = encode_request(_request(rng))
    raw, dtype, shape = payload["tokens"]
    payload["tokens"] = (raw[:-8], dtype, shape)
    with pytest.raises(TruncatedPayloadError, match="byte"):
        decode_request(payload)


def test_shape_bytes_mismatch_rejected_even_when_longer():
    rng = make_rng(62)
    payload = encode_request(_request(rng))
    raw, dtype, shape = payload["q"]
    payload["q"] = (raw + b"\0" * 16, dtype, shape)
    with pytest.raises(TruncatedPayloadError):
        decode_request(payload)


def test_malformed_array_payload_rejected():
    rng = make_rng(63)
    payload = encode_request(_request(rng))
    payload["wk"] = (b"\x01\x02", "not-a-dtype", (1, 2))
    with pytest.raises(CodecError):
        decode_request(payload)


# ------------------------------------------------------------------ frames
def test_frame_round_trip_across_arbitrary_chunking():
    rng = make_rng(64)
    messages = [
        ("req", 1, encode_request(_request(rng))),
        ("ping", 7),
        ("result", 0, 1, {"v": CODEC_VERSION}, {"n_requests": 1}),
    ]
    stream = b"".join(encode_frame(m) for m in messages)
    for chunk in (1, 3, len(stream)):  # byte-by-byte up to one-shot
        decoder = FrameDecoder()
        got = []
        for at in range(0, len(stream), chunk):
            got.extend(decoder.feed(stream[at : at + chunk]))
        decoder.close()
        assert len(got) == len(messages)
        assert got[1] == ("ping", 7)
        assert got[0][2]["tokens"] == messages[0][2]["tokens"]


def test_frame_checksum_mismatch_detected():
    frame = bytearray(encode_frame(("ping", 1)))
    frame[-1] ^= 0xFF  # flip a payload bit; header checksum now disagrees
    decoder = FrameDecoder()
    with pytest.raises(FrameChecksumError):
        decoder.feed(bytes(frame))
    # the decoder stays poisoned: framing sync is unrecoverable
    with pytest.raises(FrameChecksumError):
        decoder.feed(b"")


def test_frame_version_skew_detected():
    frame = bytearray(encode_frame(("ping", 2)))
    magic, version, flags, length, crc = struct.unpack(">4sHHII", frame[:FRAME_HEADER_SIZE])
    frame[:FRAME_HEADER_SIZE] = struct.pack(">4sHHII", magic, version + 1, flags, length, crc)
    with pytest.raises(FrameVersionError, match="version"):
        FrameDecoder().feed(bytes(frame))


def test_frame_bad_magic_detected():
    frame = b"XXXX" + encode_frame(("ping", 3))[4:]
    with pytest.raises(FrameError, match="magic"):
        FrameDecoder().feed(frame)


def test_truncated_stream_detected_at_close():
    frame = encode_frame(("ping", 4))
    decoder = FrameDecoder()
    assert decoder.feed(frame[:-3]) == []  # incomplete: waits for more
    with pytest.raises(TruncatedFrameError, match="incomplete"):
        decoder.close()


def test_clean_stream_closes_silently():
    decoder = FrameDecoder()
    assert decoder.feed(encode_frame(("ping", 5))) == [("ping", 5)]
    decoder.close()  # nothing buffered: no error


def test_frame_payload_bytes_are_bit_exact():
    rng = make_rng(65)
    req = _request(rng, k_scale=0.5, cache_key=("s", 1))
    payload = encode_request(req)
    [(kind, req_id, back)] = FrameDecoder().feed(encode_frame(("req", 9, payload)))
    assert (kind, req_id) == ("req", 9)
    decoded = decode_request(back)
    assert decoded.tokens.tobytes() == np.asarray(req.tokens).tobytes()
    assert request_fingerprint(back) == request_fingerprint(payload)


# ----------------------------------------- failed futures, never hung ones
def _drain(q_):
    messages = []
    while True:
        try:
            messages.append(q_.get_nowait())
        except queue.Empty:
            return messages


def test_worker_answers_undecodable_request_with_error_message():
    """A corrupt/version-skewed payload reaches the worker loop: the reply
    must be a per-request ``error`` (a failed future at the frontend), not
    a crashed worker or a silently dropped (hung) request."""
    from repro.cluster.worker import worker_main

    rng = make_rng(66)
    truncated = encode_request(_request(rng))
    raw, dtype, shape = truncated["tokens"]
    truncated["tokens"] = (raw[:-8], dtype, shape)
    skewed = encode_request(_request(rng))
    skewed["v"] = CODEC_VERSION + 3
    good = encode_request(_request(rng))

    inbox, outbox = queue.Queue(), queue.Queue()
    inbox.put(("req", 1, truncated))
    inbox.put(("req", 2, skewed))
    inbox.put(("req", 3, good))
    inbox.put(("stop",))
    worker_main(4, inbox, outbox, {"config": encode_config(CFG)})

    messages = _drain(outbox)
    assert messages[0] == ("ready", 4)
    by_req = {m[2]: m for m in messages if m[0] in ("error", "result")}
    assert by_req[1][0] == "error"
    assert isinstance(pickle.loads(by_req[1][3]), TruncatedPayloadError)
    assert by_req[2][0] == "error"
    assert isinstance(pickle.loads(by_req[2][3]), CodecVersionError)
    assert by_req[3][0] == "result"  # neighbours untouched by the bad ones
    assert messages[-1] == ("stopped", 4)


def test_fingerprint_ignores_tag_and_deadline_only():
    rng = make_rng(7)
    base = _request(rng)
    same = AttentionRequest(
        tokens=base.tokens, q=base.q, wk=base.wk, wv=base.wv,
        tag="other", deadline=99.0,
    )
    fp = request_fingerprint(encode_request(base))
    assert request_fingerprint(encode_request(same)) == fp

    louder = AttentionRequest(
        tokens=base.tokens * 2, q=base.q, wk=base.wk, wv=base.wv
    )
    keyed = AttentionRequest(
        tokens=base.tokens, q=base.q, wk=base.wk, wv=base.wv, cache_key="s0"
    )
    configured = AttentionRequest(
        tokens=base.tokens, q=base.q, wk=base.wk, wv=base.wv,
        config=SofaConfig(tile_cols=8, top_k=0.5),
    )
    scaled = AttentionRequest(
        tokens=base.tokens, q=base.q, wk=base.wk, wv=base.wv, k_scale=0.5
    )
    for variant in (louder, keyed, configured, scaled):
        assert request_fingerprint(encode_request(variant)) != fp


def test_fingerprint_distinguishes_shape_of_same_bytes():
    rng = make_rng(8)
    flat = rng.normal(size=(4, 4))
    a = AttentionRequest(tokens=flat, q=rng.normal(size=(2, 4)),
                         wk=np.eye(4), wv=np.eye(4))
    b = AttentionRequest(tokens=flat.reshape(2, 8)[:, :4].copy(),
                         q=a.q, wk=np.eye(4), wv=np.eye(4))
    assert request_fingerprint(encode_request(a)) != request_fingerprint(encode_request(b))
