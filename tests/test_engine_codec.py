"""Wire-codec tests: bit-exact round-trips and stable dedup fingerprints.

The cluster's cross-process parity contract stands on this codec: a
request must decode to exactly the tensors that were encoded (bit for
bit, dtype and shape included), and a result must round-trip outputs,
selections, stage traces and op counts without loss.
"""

import numpy as np
import pytest

from repro.core.config import DlzsConfig, SofaConfig
from repro.core.pipeline import SofaAttention
from repro.engine.codec import (
    CODEC_VERSION,
    decode_config,
    decode_request,
    decode_result,
    encode_config,
    encode_request,
    encode_result,
    request_fingerprint,
)
from repro.engine.serving import AttentionRequest
from repro.utils.rng import make_rng

CFG = SofaConfig(tile_cols=16, top_k=0.5)


def _request(rng, s=32, h=8, dk=8, t=3, **kwargs):
    return AttentionRequest(
        tokens=rng.integers(-100, 100, size=(s, h)).astype(np.float64),
        q=rng.normal(size=(t, dk)),
        wk=rng.normal(size=(h, dk)),
        wv=rng.normal(size=(h, dk)),
        **kwargs,
    )


def test_request_round_trip_bit_exact():
    rng = make_rng(3)
    req = _request(
        rng,
        k_scale=0.25,
        v_scale=1.5,
        v=rng.normal(size=(32, 8)),
        config=SofaConfig(tile_cols=8, top_k=4, dlzs=DlzsConfig(token_bits=6)),
        tag="req-0",
        cache_key=("session", 2, 5),
        deadline=123.5,
    )
    back = decode_request(encode_request(req))
    for name in ("tokens", "q", "wk", "wv", "v"):
        a, b = getattr(req, name), getattr(back, name)
        assert a.tobytes() == b.tobytes() and a.dtype == b.dtype and a.shape == b.shape
    assert back.k_scale == req.k_scale and back.v_scale == req.v_scale
    assert back.config == req.config
    assert back.tag == req.tag
    assert back.cache_key == req.cache_key
    assert back.deadline == req.deadline


def test_request_round_trip_defaults_and_non_contiguous():
    rng = make_rng(4)
    wide = rng.normal(size=(8, 16))
    req = AttentionRequest(
        tokens=rng.integers(-5, 5, size=(12, 8)).astype(np.float32),
        q=rng.normal(size=(2, 8))[:, ::-1],  # negative-stride view
        wk=wide[:, ::2],  # non-contiguous columns
        wv=wide[:, 1::2],
    )
    back = decode_request(encode_request(req))
    assert back.tokens.dtype == np.float32
    assert np.array_equal(back.q, np.asarray(req.q))
    assert np.array_equal(back.wk, np.asarray(req.wk))
    assert back.v is None and back.config is None and back.cache_key is None


def test_result_round_trip_preserves_traces_and_ops():
    rng = make_rng(5)
    req = _request(rng)
    result = SofaAttention(req.wk, req.wv, CFG)(req.tokens, req.q)
    back = decode_result(encode_result(result))
    assert back.output.tobytes() == result.output.tobytes()
    assert np.array_equal(back.selected, result.selected)
    assert back.assurance_triggers == result.assurance_triggers
    assert [s.name for s in back.stages] == [s.name for s in result.stages]
    for a, b in zip(result.stages, back.stages):
        assert a.ops.counts == b.ops.counts
        assert a.dram_bytes == b.dram_bytes
        assert a.sram_peak_bytes == b.sram_peak_bytes
    assert back.total_ops.counts == result.total_ops.counts
    assert np.array_equal(back.reference_mask, result.reference_mask)


def test_config_codec_none_and_nested():
    assert encode_config(None) is None and decode_config(None) is None
    cfg = SofaConfig(tile_cols=4, top_k=2)
    assert decode_config(encode_config(cfg)) == cfg


def test_version_mismatch_rejected():
    rng = make_rng(6)
    payload = encode_request(_request(rng))
    payload["v"] = CODEC_VERSION + 1
    with pytest.raises(ValueError, match="version"):
        decode_request(payload)
    res = encode_result(SofaAttention(
        _request(rng).wk, _request(rng).wv, CFG
    )(_request(rng).tokens, _request(rng).q))
    res["v"] = 0
    with pytest.raises(ValueError, match="version"):
        decode_result(res)


def test_fingerprint_ignores_tag_and_deadline_only():
    rng = make_rng(7)
    base = _request(rng)
    same = AttentionRequest(
        tokens=base.tokens, q=base.q, wk=base.wk, wv=base.wv,
        tag="other", deadline=99.0,
    )
    fp = request_fingerprint(encode_request(base))
    assert request_fingerprint(encode_request(same)) == fp

    louder = AttentionRequest(
        tokens=base.tokens * 2, q=base.q, wk=base.wk, wv=base.wv
    )
    keyed = AttentionRequest(
        tokens=base.tokens, q=base.q, wk=base.wk, wv=base.wv, cache_key="s0"
    )
    configured = AttentionRequest(
        tokens=base.tokens, q=base.q, wk=base.wk, wv=base.wv,
        config=SofaConfig(tile_cols=8, top_k=0.5),
    )
    scaled = AttentionRequest(
        tokens=base.tokens, q=base.q, wk=base.wk, wv=base.wv, k_scale=0.5
    )
    for variant in (louder, keyed, configured, scaled):
        assert request_fingerprint(encode_request(variant)) != fp


def test_fingerprint_distinguishes_shape_of_same_bytes():
    rng = make_rng(8)
    flat = rng.normal(size=(4, 4))
    a = AttentionRequest(tokens=flat, q=rng.normal(size=(2, 4)),
                         wk=np.eye(4), wv=np.eye(4))
    b = AttentionRequest(tokens=flat.reshape(2, 8)[:, :4].copy(),
                         q=a.q, wk=np.eye(4), wv=np.eye(4))
    assert request_fingerprint(encode_request(a)) != request_fingerprint(encode_request(b))
