"""Tests for the Fig. 16 deployment flow (preparation -> inference)."""

import numpy as np
import pytest

from repro.core.deployment import DeploymentServer, InferenceSession
from repro.model.workloads import make_workload


@pytest.fixture(scope="module")
def server_and_workload():
    wl = make_workload("bert-b/qnli", n_queries=8, head_dim=32, seq_len=128, seed=31)
    server = DeploymentServer()
    server.prepare(
        "bert-base", "qnli", wl.wk, wl.wv, seq_len=128,
        loss_budget_pct=1.0, dse_iterations=8, seed=2,
    )
    return server, wl


def test_preparation_registers_configuration(server_and_workload):
    server, _ = server_and_workload
    assert server.available() == ["bert-base/qnli"]


def test_prepared_top_k_matches_budget(server_and_workload):
    server, _ = server_and_workload
    prepared = server.configurations["bert-base/qnli"]
    assert prepared.config.top_k == pytest.approx(0.12)  # 1% budget keep


def test_prepared_stores_lz_codes(server_and_workload):
    server, wl = server_and_workload
    prepared = server.configurations["bert-base/qnli"]
    assert prepared.wk_lz.shape == wl.wk.shape
    assert prepared.wk_signs.shape == wl.wk.shape
    assert np.all(prepared.wk_lz >= 0)


def test_inference_session_runs(server_and_workload):
    server, wl = server_and_workload
    session = InferenceSession(server, "bert-base/qnli")
    result = session.infer(wl.tokens, wl.q)
    assert result.output.shape == (wl.n_queries, wl.head_dim)
    assert result.selected.shape[1] == session.prepared.config.resolve_top_k(128)


def test_unknown_model_lists_available(server_and_workload):
    server, _ = server_and_workload
    with pytest.raises(KeyError, match="bert-base/qnli"):
        InferenceSession(server, "llama/unprepared")


def test_dse_picks_valid_tiling(server_and_workload):
    server, _ = server_and_workload
    prepared = server.configurations["bert-base/qnli"]
    assert 1 <= prepared.config.tile_cols <= 128
    assert np.isfinite(prepared.dse_objective)


def test_preparation_with_loss_evaluator():
    wl = make_workload("gpt2/wikitext2", n_queries=8, head_dim=32, seq_len=128, seed=32)
    server = DeploymentServer()

    def favour_fine_tiles(point):
        return 0.01 * point.tc_per_layer[0]  # prefers few tiles

    prepared = server.prepare(
        "gpt2", "wikitext2", wl.wk, wl.wv, seq_len=128,
        evaluate_loss=favour_fine_tiles, dse_iterations=12, seed=3,
    )
    assert prepared.key == "gpt2/wikitext2"
    assert prepared.config.tile_cols >= 4  # coarse tiling favoured
