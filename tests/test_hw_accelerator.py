"""Tests for the top-level SOFA accelerator model."""

import numpy as np
import pytest

from repro.hw.accelerator import (
    SofaAccelerator,
    WorkloadShape,
    shape_from_pipeline,
)


def _shape(**overrides):
    base = dict(
        n_queries=128,
        seq_len=1024,
        hidden=512,
        head_dim=64,
        selected_per_row=128,
        unique_selected=400,
        assurance_fraction=0.02,
    )
    base.update(overrides)
    return WorkloadShape(**base)


def test_sofa_faster_than_whole_row_baseline():
    acc = SofaAccelerator()
    shape = _shape(n_queries=512, seq_len=2048, selected_per_row=256)
    sofa = acc.run(shape)
    base = acc.run_whole_row_baseline(shape)
    assert base.cycles > sofa.cycles


def test_sofa_less_dram_than_baseline():
    acc = SofaAccelerator()
    shape = _shape(n_queries=512, seq_len=2048, selected_per_row=256)
    assert acc.run(shape).dram_bytes < acc.run_whole_row_baseline(shape).dram_bytes


def test_sofa_more_energy_efficient():
    acc = SofaAccelerator()
    shape = _shape(n_queries=512, seq_len=2048, selected_per_row=256)
    sofa = acc.run(shape)
    base = acc.run_whole_row_baseline(shape)
    assert sofa.energy_efficiency_gops_per_w > base.energy_efficiency_gops_per_w


def test_pipeline_speedup_reported():
    acc = SofaAccelerator()
    report = acc.run(_shape())
    assert report.pipeline_speedup > 1.0


def test_wave_batching_scales_cycles():
    """More query waves (beyond the 128-lane hardware) add time, sublinearly:
    key prediction and KV generation are shared across waves."""
    acc = SofaAccelerator()
    one = acc.run(_shape(n_queries=128)).cycles
    four = acc.run(_shape(n_queries=512)).cycles
    assert 1.2 < four / one < 4.5


def test_energy_breakdown_has_all_modules():
    report = SofaAccelerator().run(_shape())
    assert set(report.energy_core_j) == {
        "dlzs_prediction", "sads", "kv_generation", "sufa"
    }
    assert all(v >= 0 for v in report.energy_core_j.values())


def test_total_energy_sums_components():
    report = SofaAccelerator().run(_shape())
    expected = (
        sum(report.energy_core_j.values())
        + report.sram_energy_j
        + report.dram_interface_energy_j
        + report.dram_device_energy_j
    )
    assert report.total_energy_j == pytest.approx(expected)


def test_latency_uses_clock():
    acc = SofaAccelerator(clock_hz=2e9)
    report = acc.run(_shape())
    assert report.latency_s == pytest.approx(report.cycles / 2e9)


def test_kv_requirements_drive_load_counts():
    acc = SofaAccelerator()
    reqs = [{0, 1, 2}, {1, 2, 3}]
    shape = _shape(n_queries=2, selected_per_row=3, unique_selected=4)
    sofa = acc.run(shape, kv_requirements=reqs)
    base = acc.run_whole_row_baseline(shape, kv_requirements=reqs)
    assert sofa.kv_vector_loads == 2 * 4  # unique pairs once
    assert base.kv_vector_loads >= sofa.kv_vector_loads


def test_shape_validation():
    with pytest.raises(ValueError):
        _shape(unique_selected=5000)
    with pytest.raises(ValueError):
        _shape(selected_per_row=0)


def test_shape_from_pipeline():
    selected = np.array([[3, 1], [3, 2]])
    shape = shape_from_pipeline(2, 16, 64, 8, selected, assurance_triggers=1)
    assert shape.selected_per_row == 2
    assert shape.unique_selected == 3
    assert shape.assurance_fraction == pytest.approx(0.25)


def test_assurance_fraction_raises_sofa_cost():
    acc = SofaAccelerator()
    clean = acc.run(_shape(assurance_fraction=0.0))
    dirty = acc.run(_shape(assurance_fraction=0.9))
    assert dirty.total_energy_j > clean.total_energy_j


def test_throughput_positive():
    report = SofaAccelerator().run(_shape())
    assert report.throughput_gops > 0
    assert report.average_power_w > 0
