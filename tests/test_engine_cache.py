"""Decode-step cache tests: exact counters, invalidation, bit parity.

The cache's contract is conservative reuse: a hit must be *provably*
bit-identical to recomputation (same token prefix, same quantization
scale), anything else is a miss that recomputes from scratch.  Counters are
exact and observable through ``SofaEngine.stats``.
"""

import numpy as np
import pytest

from repro.core.config import SofaConfig
from repro.engine import AttentionRequest, BatchedSofaAttention, SofaEngine
from repro.engine.cache import DecodeCacheEntry, DecodeStepCache, make_decode_cache
from repro.utils.rng import make_rng

CFG = SofaConfig(tile_cols=16, top_k=8)


def _entry(s=4, h=3, dk=2) -> DecodeCacheEntry:
    tokens = np.zeros((s, h))
    return DecodeCacheEntry(
        tokens=tokens,
        tok_values=tokens.astype(np.int64),
        tok_scale=1.0,
        tok_max_abs=0.0,
        key_values=np.zeros((s, dk), dtype=np.int64),
        quantized=True,
    )


def _decode_request(rng, tokens, wk, wv, cache_key="seq"):
    return AttentionRequest(
        tokens=tokens,
        q=rng.normal(size=(2, wk.shape[1])),
        wk=wk,
        wv=wv,
        cache_key=cache_key,
    )


# ------------------------------------------------------------------ unit level
def test_store_put_get_invalidate_clear():
    cache = DecodeStepCache(max_entries=4)
    key = ("seq", CFG, "digest")
    assert cache.get(key) is None
    cache.put(key, _entry())
    assert cache.get(key) is not None
    assert len(cache) == 1
    assert cache.invalidate(key)
    assert not cache.invalidate(key)  # already gone
    cache.put(key, _entry())
    cache.clear()
    assert len(cache) == 0


def test_store_lru_eviction_counted():
    cache = DecodeStepCache(max_entries=2)
    for i in range(3):
        cache.put((i, CFG, "d"), _entry())
    assert len(cache) == 2
    assert cache.stats.evictions == 1
    assert cache.get((0, CFG, "d")) is None  # the oldest fell out


def test_store_invalidate_prefix_matches_session_tuples():
    cache = DecodeStepCache()
    for layer in range(2):
        for head in range(3):
            cache.put((("sess-a", layer, head), CFG, "d"), _entry())
    cache.put((("sess-b", 0, 0), CFG, "d"), _entry())
    assert cache.invalidate_prefix("sess-a") == 6
    assert len(cache) == 1
    assert cache.invalidate_prefix("sess-a") == 0


@pytest.mark.parametrize("kind", ["flat", "paged"])
def test_invalidate_prefix_matches_scalar_and_tuple_keys(kind):
    """Both documented key shapes must be reachable by invalidate_prefix:
    predictor-composed ``(user_key, config, digest)`` tuples AND plain
    scalar keys written by callers driving the store directly (these used
    to fall through the tuple-only matcher and silently drop nothing)."""
    cache = make_decode_cache(kind)
    cache.put("plain-session", _entry())  # scalar store key
    cache.put(("tuple-session", CFG, "d"), _entry())
    cache.put((("nested-session", 0, 1), CFG, "d"), _entry())
    cache.put(("other", CFG, "d"), _entry())
    assert cache.invalidate_prefix("plain-session") == 1
    assert cache.invalidate_prefix("tuple-session") == 1
    assert cache.invalidate_prefix("nested-session") == 1
    assert cache.invalidate_prefix("no-such-session") == 0
    assert len(cache) == 1  # "other" untouched
    cache.close()


def test_store_rejects_zero_capacity():
    with pytest.raises(ValueError):
        DecodeStepCache(max_entries=0)


# -------------------------------------------------------------- operator level
def test_cached_operator_bit_identical_across_growth_and_counters_exact():
    """Growing a sequence: every step a hit, all results bit-identical."""
    rng = make_rng(21)
    n, h, d = 2, 16, 16
    wk = rng.normal(size=(n, h, d))
    wv = rng.normal(size=(n, h, d))
    op = BatchedSofaAttention(wk, wv, CFG)
    cache = DecodeStepCache()
    keys = [("s", i) for i in range(n)]
    tokens = rng.integers(-80, 80, size=(n, 48, h)).astype(np.float64)
    for step in range(5):
        if step:
            new = rng.integers(-80, 80, size=(n, 1, h)).astype(np.float64)
            tokens = np.concatenate([tokens, new], axis=1)
        q = rng.normal(size=(n, 2, d))
        ref = op(tokens, q)
        got = op(tokens, q, cache=cache, cache_keys=keys)
        for i in range(n):
            assert ref.per_head[i].output.tobytes() == got.per_head[i].output.tobytes()
            np.testing.assert_array_equal(
                ref.per_head[i].selected, got.per_head[i].selected
            )
            for st_r, st_g in zip(ref.per_head[i].stages, got.per_head[i].stages):
                for opn in set(st_r.ops.counts) | set(st_g.ops.counts):
                    assert st_r.ops[opn] == st_g.ops[opn]
    # exact: first step misses per head, every later step hits per head
    assert cache.stats.misses == n
    assert cache.stats.hits == 4 * n
    assert cache.stats.invalidations == 0
    assert cache.stats.rows_appended == 4 * n
    assert cache.stats.rows_reused == sum(n * (48 + s) for s in range(4))


def test_louder_token_invalidates_scale_and_stays_identical():
    """A new token above the cached max changes the global quantization
    scale: the entry must be invalidated, recomputed, and still bit-exact."""
    rng = make_rng(22)
    n, h, d = 1, 12, 12
    wk = rng.normal(size=(n, h, d))
    wv = rng.normal(size=(n, h, d))
    op = BatchedSofaAttention(wk, wv, CFG)
    cache = DecodeStepCache()
    tokens = rng.uniform(-50, 50, size=(n, 40, h))
    op(tokens, rng.normal(size=(n, 2, d)), cache=cache, cache_keys=["s"])
    # quiet growth: reuse
    tokens = np.concatenate([tokens, rng.uniform(-1, 1, size=(n, 1, h))], axis=1)
    q = rng.normal(size=(n, 2, d))
    ref = op(tokens, q)
    got = op(tokens, q, cache=cache, cache_keys=["s"])
    assert ref.per_head[0].output.tobytes() == got.per_head[0].output.tobytes()
    assert cache.stats.hits == 1 and cache.stats.invalidations == 0
    # loud growth: the max moves -> invalidate + full recompute, still exact
    tokens = np.concatenate([tokens, np.full((n, 1, h), 500.0)], axis=1)
    ref = op(tokens, q)
    got = op(tokens, q, cache=cache, cache_keys=["s"])
    assert ref.per_head[0].output.tobytes() == got.per_head[0].output.tobytes()
    assert cache.stats.invalidations == 1
    assert cache.stats.misses == 2  # initial fill + the invalidation
    # and the recomputed entry serves hits again
    tokens = np.concatenate([tokens, rng.uniform(-1, 1, size=(n, 1, h))], axis=1)
    got = op(tokens, q, cache=cache, cache_keys=["s"])
    assert op(tokens, q).per_head[0].output.tobytes() == got.per_head[0].output.tobytes()
    assert cache.stats.hits == 2


def test_rewritten_prefix_and_shrunk_sequence_miss():
    rng = make_rng(23)
    n, h, d = 1, 10, 10
    op = BatchedSofaAttention(
        rng.normal(size=(n, h, d)), rng.normal(size=(n, h, d)), CFG
    )
    cache = DecodeStepCache()
    tokens = rng.integers(-50, 50, size=(n, 32, h)).astype(np.float64)
    q = rng.normal(size=(n, 2, d))
    op(tokens, q, cache=cache, cache_keys=["s"])
    # rewrite one prefix token -> prefix equality fails -> invalidating miss
    mutated = tokens.copy()
    mutated[0, 3, 4] += 1.0
    ref = op(mutated, q)
    got = op(mutated, q, cache=cache, cache_keys=["s"])
    assert ref.per_head[0].output.tobytes() == got.per_head[0].output.tobytes()
    assert cache.stats.misses == 2 and cache.stats.invalidations == 1
    # shrink below the cached length -> miss again
    short = mutated[:, :16]
    ref = op(short, q)
    got = op(short, q, cache=cache, cache_keys=["s"])
    assert ref.per_head[0].output.tobytes() == got.per_head[0].output.tobytes()
    assert cache.stats.misses == 3


def test_mixed_keyed_and_keyless_heads_in_one_stack():
    rng = make_rng(24)
    n, h, d = 3, 12, 12
    op = BatchedSofaAttention(
        rng.normal(size=(n, h, d)), rng.normal(size=(n, h, d)), CFG
    )
    cache = DecodeStepCache()
    tokens = rng.integers(-60, 60, size=(n, 40, h)).astype(np.float64)
    q = rng.normal(size=(n, 2, d))
    keys = ["a", None, "c"]
    ref = op(tokens, q)
    got = op(tokens, q, cache=cache, cache_keys=keys)
    for i in range(n):
        assert ref.per_head[i].output.tobytes() == got.per_head[i].output.tobytes()
    assert cache.stats.lookups == 2  # keyless head never touches the store


def test_cache_keys_length_validated():
    rng = make_rng(25)
    op = BatchedSofaAttention(
        rng.normal(size=(2, 8, 8)), rng.normal(size=(2, 8, 8)), CFG
    )
    with pytest.raises(ValueError):
        op(
            rng.integers(-10, 10, size=(2, 32, 8)).astype(np.float64),
            rng.normal(size=(2, 2, 8)),
            cache=DecodeStepCache(),
            cache_keys=["only-one"],
        )


def test_same_user_key_different_weights_do_not_collide():
    """Store keys are namespaced by weight digests: two operators may share
    a user-visible sequence id without reading each other's K_hat."""
    rng = make_rng(26)
    h, d = 10, 10
    tokens = rng.integers(-40, 40, size=(1, 36, h)).astype(np.float64)
    q = rng.normal(size=(1, 2, d))
    cache = DecodeStepCache()
    op_a = BatchedSofaAttention(
        rng.normal(size=(1, h, d)), rng.normal(size=(1, h, d)), CFG
    )
    op_b = BatchedSofaAttention(
        rng.normal(size=(1, h, d)), rng.normal(size=(1, h, d)), CFG
    )
    ref_a = op_a(tokens, q)
    ref_b = op_b(tokens, q)
    got_a = op_a(tokens, q, cache=cache, cache_keys=["shared"])
    got_b = op_b(tokens, q, cache=cache, cache_keys=["shared"])
    assert ref_a.per_head[0].output.tobytes() == got_a.per_head[0].output.tobytes()
    assert ref_b.per_head[0].output.tobytes() == got_b.per_head[0].output.tobytes()
    assert cache.stats.misses == 2  # op_b could NOT reuse op_a's entry
    assert len(cache) == 2


def test_float32_tokens_stay_bit_identical_through_cache():
    """Narrow float input must round in float64 on the hit path exactly as
    quantize/quantize_stack do on the uncached path."""
    rng = make_rng(31)
    n, h, d = 1, 14, 14
    op = BatchedSofaAttention(
        rng.normal(size=(n, h, d)), rng.normal(size=(n, h, d)), CFG
    )
    cache = DecodeStepCache()
    tokens = (rng.uniform(-70, 70, size=(n, 44, h))).astype(np.float32)
    q = rng.normal(size=(n, 2, d))
    for _ in range(4):
        ref = op(tokens, q)
        got = op(tokens, q, cache=cache, cache_keys=["f32"])
        assert ref.per_head[0].output.tobytes() == got.per_head[0].output.tobytes()
        tokens = np.concatenate(
            [tokens, rng.uniform(-70, 70, size=(n, 1, h)).astype(np.float32)], axis=1
        )
    assert cache.stats.hits >= 1  # growth actually exercised the hit path


def test_resident_bytes_tracked_and_byte_bound_evicts():
    cache = DecodeStepCache(max_entries=64, max_bytes=3 * _entry().nbytes // 2)
    assert cache.stats.resident_bytes == 0
    cache.put(("a", CFG, "d"), _entry())
    one = cache.stats.resident_bytes
    assert one == _entry().nbytes > 0
    cache.put(("b", CFG, "d"), _entry())  # over the byte bound -> evict "a"
    assert cache.stats.evictions == 1
    assert cache.stats.resident_bytes == one
    assert cache.get(("a", CFG, "d")) is None
    cache.invalidate(("b", CFG, "d"))
    assert cache.stats.resident_bytes == 0
    with pytest.raises(ValueError):
        DecodeStepCache(max_bytes=0)


# ---------------------------------------------------------------- engine level
def test_engine_decode_loop_counters_exact_and_surfaced():
    rng = make_rng(27)
    h, d, steps = 16, 16, 6
    wk = rng.normal(size=(h, d))
    wv = rng.normal(size=(h, d))
    engine = SofaEngine(CFG)
    tokens = rng.integers(-70, 70, size=(48, h)).astype(np.float64)
    uncached = SofaEngine(CFG)
    for step in range(steps):
        if step:
            tokens = np.concatenate(
                [tokens, rng.integers(-70, 70, size=(1, h)).astype(np.float64)]
            )
        req = _decode_request(rng, tokens, wk, wv)
        fut = engine.submit(req)
        engine.flush()
        plain = uncached.submit(
            AttentionRequest(tokens=tokens, q=req.q, wk=wk, wv=wv)
        )
        uncached.flush()
        assert fut.result().output.tobytes() == plain.result().output.tobytes()
    assert engine.stats.cache_hits == steps - 1
    assert engine.stats.cache_misses == 1
    assert engine.stats.cache.hit_rate == pytest.approx((steps - 1) / steps)
    assert uncached.stats.cache.lookups == 0


def test_engine_invalidate_cache_by_session_prefix():
    rng = make_rng(28)
    h, d = 12, 12
    wk = rng.normal(size=(h, d))
    wv = rng.normal(size=(h, d))
    engine = SofaEngine(CFG)
    tokens = rng.integers(-60, 60, size=(40, h)).astype(np.float64)
    for head in range(3):
        engine.submit(
            _decode_request(rng, tokens, wk, wv, cache_key=("sess", 0, head))
        )
    engine.flush()
    assert engine.invalidate_cache("sess") == 3
    assert engine.invalidate_cache("sess") == 0


def test_shared_cache_across_engines():
    """Two engines sharing one store see each other's warm prefixes."""
    rng = make_rng(29)
    h, d = 12, 12
    wk = rng.normal(size=(h, d))
    wv = rng.normal(size=(h, d))
    shared = DecodeStepCache()
    tokens = rng.integers(-60, 60, size=(40, h)).astype(np.float64)
    first = SofaEngine(CFG, cache=shared)
    first.run([_decode_request(rng, tokens, wk, wv)])
    grown = np.concatenate(
        [tokens, rng.integers(-60, 60, size=(1, h)).astype(np.float64)]
    )
    second = SofaEngine(CFG, cache=shared)
    second.run([_decode_request(rng, grown, wk, wv)])
    assert shared.stats.hits == 1 and shared.stats.misses == 1


# ------------------------------------------------------------------- TTL knob
def test_ttl_expires_idle_entries_with_injected_clock():
    now = [0.0]
    cache = DecodeStepCache(max_entries=8, ttl_s=10.0, clock=lambda: now[0])
    cache.put(("a", CFG, "d"), _entry())
    cache.put(("b", CFG, "d"), _entry())
    now[0] = 5.0
    assert cache.get(("a", CFG, "d")) is not None  # touch refreshes "a"
    now[0] = 12.0  # "b" idle 12s > ttl, "a" idle 7s
    assert cache.get(("b", CFG, "d")) is None
    assert cache.get(("a", CFG, "d")) is not None
    assert cache.stats.expirations == 1
    assert len(cache) == 1


def test_ttl_sweep_expired_explicit_and_bytes_released():
    now = [0.0]
    cache = DecodeStepCache(max_entries=8, ttl_s=1.0, clock=lambda: now[0])
    cache.put(("a", CFG, "d"), _entry())
    assert cache.stats.resident_bytes > 0
    now[0] = 2.0
    assert cache.sweep_expired() == 1
    assert cache.stats.resident_bytes == 0
    assert cache.stats.expirations == 1
    assert cache.sweep_expired() == 0  # nothing left


def test_ttl_expiration_distinct_from_lru_eviction():
    now = [0.0]
    cache = DecodeStepCache(max_entries=1, ttl_s=100.0, clock=lambda: now[0])
    cache.put(("a", CFG, "d"), _entry())
    cache.put(("b", CFG, "d"), _entry())  # LRU pressure, not TTL
    assert cache.stats.evictions == 1
    assert cache.stats.expirations == 0


def test_ttl_validated():
    with pytest.raises(ValueError):
        DecodeStepCache(ttl_s=0.0)
    with pytest.raises(ValueError):
        DecodeStepCache(ttl_s=-1.0)


def test_engine_surfaces_ttl_expirations_in_stats():
    rng = make_rng(17)
    engine = SofaEngine(CFG, cache_ttl_s=1e-9)  # everything idles out instantly
    wk = rng.normal(size=(6, 4))
    wv = rng.normal(size=(6, 4))
    tokens = rng.integers(-50, 50, size=(32, 6)).astype(np.float64)
    for step in range(3):
        tokens = np.concatenate([tokens, rng.integers(-50, 50, size=(1, 6)).astype(np.float64)])
        fut = engine.submit(_decode_request(rng, tokens, wk, wv, cache_key="abandoned"))
        engine.flush()
        fut.result()
    # every step's entry expired before the next lookup: all misses
    assert engine.stats.cache_hits == 0
    assert engine.stats.cache_misses == 3
    assert engine.stats.cache_expirations >= 2
