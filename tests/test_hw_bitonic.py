"""Tests for the bit-accurate iterative bitonic sorter (the SADS core)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.hw.bitonic import IterativeBitonicSorter, _bitonic_sort_network
from repro.hw.units import SadsEngine


def test_network_size_validation():
    with pytest.raises(ValueError):
        _bitonic_sort_network(12)
    with pytest.raises(ValueError):
        IterativeBitonicSorter(width=16, keep=16)


def test_network_comparator_count_formula():
    """A bitonic sorting network of width n=2^m has n/2 * m(m+1)/2 comparators."""
    for n in (4, 8, 16, 32):
        m = int(np.log2(n))
        assert len(_bitonic_sort_network(n)) == (n // 2) * m * (m + 1) // 2


def test_single_round_sorts_sixteen():
    sorter = IterativeBitonicSorter()
    rng = np.random.default_rng(1)
    vals = rng.normal(size=12)
    step = sorter.push(vals, np.arange(12))
    expected = np.sort(vals)[::-1][:4]
    np.testing.assert_allclose(step.best, expected)


def test_streaming_matches_software_topk():
    rng = np.random.default_rng(2)
    vals = rng.normal(size=200)
    sorter = IterativeBitonicSorter()
    idx, _ = sorter.stream_topk(vals)
    expected = np.argsort(-vals, kind="stable")[:4]
    assert set(map(int, idx)) == set(map(int, expected))
    # and in descending order
    assert np.all(np.diff(vals[idx]) <= 0)


@given(
    hnp.arrays(
        np.float64, st.integers(5, 150),
        elements=st.floats(-1e6, 1e6, allow_nan=False),
        unique=True,
    )
)
@settings(max_examples=50, deadline=None)
def test_streamed_topk_always_correct(vals):
    """Property: the streamed hardware result equals exact top-4 for any
    distinct-valued input stream."""
    sorter = IterativeBitonicSorter()
    idx, _ = sorter.stream_topk(vals)
    expected = np.argsort(-vals)[: min(4, vals.size)]
    assert set(map(int, idx)) == set(map(int, expected))


def test_comparator_count_exact():
    """Total comparators = rounds x network size (every lane pair fires)."""
    sorter = IterativeBitonicSorter()
    vals = np.arange(48, dtype=np.float64)
    _, fired = sorter.stream_topk(vals)
    rounds = -(-48 // sorter.fresh_per_round)
    assert fired == rounds * sorter.comparators_per_round


def test_analytic_engine_model_is_conservative():
    """The SadsEngine's pruned-network estimate must not exceed the full
    executed network's comparator count (pruning removes comparators)."""
    engine = SadsEngine()
    golden = IterativeBitonicSorter()
    assert engine.comparators_per_round() <= golden.comparators_per_round


def test_push_validates_inputs():
    sorter = IterativeBitonicSorter()
    with pytest.raises(ValueError):
        sorter.push(np.zeros(13), np.arange(13))  # too many fresh inputs
    with pytest.raises(ValueError):
        sorter.push(np.zeros((2, 2)), np.zeros((2, 2), dtype=np.int64))


def test_reset_clears_state():
    sorter = IterativeBitonicSorter()
    sorter.push(np.array([5.0, 1.0]), np.array([0, 1]))
    sorter.reset()
    vals, idx = sorter.top()
    assert vals.size == 0 and idx.size == 0


def test_carried_values_survive_weak_rounds():
    """Early strong values must survive later rounds of weak inputs."""
    sorter = IterativeBitonicSorter()
    sorter.push(np.array([100.0, 99.0, 98.0, 97.0]), np.arange(4))
    for start in range(0, 36, 12):
        sorter.push(np.zeros(12), np.arange(10 + start, 22 + start))
    vals, idx = sorter.top()
    np.testing.assert_allclose(vals, [100.0, 99.0, 98.0, 97.0])
    np.testing.assert_array_equal(idx, [0, 1, 2, 3])


def test_wider_network_variant():
    sorter = IterativeBitonicSorter(width=8, keep=2)
    rng = np.random.default_rng(3)
    vals = rng.normal(size=50)
    idx, _ = sorter.stream_topk(vals)
    expected = np.argsort(-vals)[:2]
    assert set(map(int, idx)) == set(map(int, expected))
