"""Tests for the full Transformer substrate."""

import numpy as np
import pytest

from repro.model.config import get_model
from repro.model.transformer import Transformer


def test_forward_shape(rng):
    cfg = get_model("bert-base")
    model = Transformer.init_scaled(rng, cfg, n_layers=2, hidden=48, seq_len=16)
    x = model.embed_tokens(rng, 16)
    out = model(x)
    assert out.shape == (16, 48)


def test_forward_rejects_wrong_hidden(rng):
    cfg = get_model("bert-base")
    model = Transformer.init_scaled(rng, cfg, n_layers=1, hidden=48)
    with pytest.raises(ValueError):
        model(rng.normal(size=(8, 64)))


def test_init_scaled_preserves_head_divisibility(rng):
    cfg = get_model("bert-large")  # 16 heads
    model = Transformer.init_scaled(rng, cfg, n_layers=1, hidden=50)
    assert model.config.hidden % model.config.n_heads == 0


def test_deterministic_given_seed():
    from repro.utils.rng import make_rng

    cfg = get_model("gpt2")
    m1 = Transformer.init_scaled(make_rng(4), cfg, n_layers=1, hidden=24, seq_len=8)
    m2 = Transformer.init_scaled(make_rng(4), cfg, n_layers=1, hidden=24, seq_len=8)
    x = make_rng(5).normal(size=(8, 24))
    np.testing.assert_allclose(m1(x), m2(x))


def test_attention_fn_threaded_through_blocks(rng):
    cfg = get_model("bert-base")
    model = Transformer.init_scaled(rng, cfg, n_layers=2, hidden=24, seq_len=8)
    x = model.embed_tokens(rng, 8)
    count = []

    def spy(q, k, v):
        count.append(1)
        from repro.attention.reference import dense_attention

        return dense_attention(q, k, v)

    dense = model(x)
    spied = model(x, attention_fn=spy)
    assert len(count) == 2 * model.config.n_heads
    np.testing.assert_allclose(spied, dense, atol=1e-9)
