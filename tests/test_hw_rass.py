"""Tests for RASS scheduling, including the paper's Fig. 15 example."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.scheduler.rass import (
    FIG15_BUFFER_CAPACITY,
    FIG15_ID_BUFFER_REQUIREMENTS,
    FIG15_REQUIREMENTS,
    build_id_buffer,
    naive_schedule,
    rass_schedule,
    schedule_is_valid,
)


def test_paper_example_naive_24_vectors():
    report = naive_schedule(FIG15_REQUIREMENTS, FIG15_BUFFER_CAPACITY)
    assert report.vector_loads == 24


def test_paper_example_rass_16_vectors():
    report = rass_schedule(FIG15_REQUIREMENTS, FIG15_BUFFER_CAPACITY)
    assert report.vector_loads == 16


def test_paper_example_33pct_reduction():
    naive = naive_schedule(FIG15_REQUIREMENTS, FIG15_BUFFER_CAPACITY)
    rass = rass_schedule(FIG15_REQUIREMENTS, FIG15_BUFFER_CAPACITY)
    assert 1 - rass.vector_loads / naive.vector_loads == pytest.approx(1 / 3)


def test_id_buffer_matches_figure():
    """Fig. 15's scheduler panel: {5,6}->1000, {0,1}->0100, {2,3}->1110,
    {4,7}->1011."""
    table = build_id_buffer(FIG15_ID_BUFFER_REQUIREMENTS)
    assert table["1000"] == [5, 6]
    assert table["0100"] == [0, 1]
    assert table["1110"] == [2, 3]
    assert table["1011"] == [4, 7]


def test_rass_schedule_valid_on_example():
    report = rass_schedule(FIG15_REQUIREMENTS, FIG15_BUFFER_CAPACITY)
    assert schedule_is_valid(FIG15_REQUIREMENTS, report)


def test_rass_loads_each_pair_once():
    report = rass_schedule(FIG15_REQUIREMENTS, FIG15_BUFFER_CAPACITY)
    seen = [kv for phase in report.phases for kv in phase]
    assert len(seen) == len(set(seen))


def test_phases_respect_capacity():
    report = rass_schedule(FIG15_REQUIREMENTS, 3)
    assert all(len(phase) <= 3 for phase in report.phases)


def test_naive_retain_buffer_variant_beats_double_buffered():
    flushing = naive_schedule(FIG15_REQUIREMENTS, FIG15_BUFFER_CAPACITY)
    retaining = naive_schedule(
        FIG15_REQUIREMENTS, FIG15_BUFFER_CAPACITY, retain_buffer=True
    )
    assert retaining.vector_loads <= flushing.vector_loads


def test_rass_never_worse_than_unique_set():
    reqs = [{0, 1, 2}, {1, 2, 3}, {2, 3, 4}]
    report = rass_schedule(reqs, capacity=4)
    assert report.kv_pair_loads == 5  # exactly the unique pairs


def test_empty_requirement_rejected():
    with pytest.raises(ValueError):
        rass_schedule([set()], 4)
    with pytest.raises(ValueError):
        naive_schedule([], 4)


def test_capacity_validated():
    with pytest.raises(ValueError):
        rass_schedule([{1}], 0)


@given(
    st.lists(
        st.sets(st.integers(0, 15), min_size=1, max_size=8),
        min_size=1,
        max_size=8,
    ),
    st.integers(2, 8),
)
@settings(max_examples=80, deadline=None)
def test_rass_valid_and_no_worse_than_naive(reqs, capacity):
    """For any requirement pattern: RASS covers everything and never loads
    more vectors than the double-buffered naive execution."""
    naive = naive_schedule(reqs, capacity)
    rass = rass_schedule(reqs, capacity)
    assert schedule_is_valid(reqs, rass)
    assert schedule_is_valid(reqs, naive)
    assert rass.vector_loads <= naive.vector_loads


@given(
    st.lists(
        st.sets(st.integers(0, 20), min_size=1, max_size=10),
        min_size=1,
        max_size=6,
    )
)
@settings(max_examples=60, deadline=None)
def test_rass_loads_exactly_unique_pairs(reqs):
    """RASS's ideal: total pair loads equal the union of requirements."""
    unique = len(set().union(*reqs))
    assert rass_schedule(reqs, capacity=64).kv_pair_loads == unique


# ------------------------------------------------- lane load balancing (RASS)
def test_lane_balancer_greedy_least_loaded():
    from repro.hw.scheduler.rass import LaneLoadBalancer

    bal = LaneLoadBalancer(n_lanes=3)
    assert bal.pick(4.0) == 0  # ties break to the lowest lane
    assert bal.pick(2.0) == 1
    assert bal.pick(1.0) == 2
    assert bal.pick(1.0) == 2  # lane 2 still lightest (2.0 after this pick)
    assert bal.loads == [4.0, 2.0, 2.0]


def test_lane_balancer_retire_drains_load():
    from repro.hw.scheduler.rass import LaneLoadBalancer

    bal = LaneLoadBalancer(n_lanes=2)
    lane = bal.pick(10.0)
    bal.retire(lane, 10.0)
    assert bal.loads == [0.0, 0.0]
    bal.retire(lane, 5.0)  # mismatched retire clamps, never negative
    assert bal.loads[lane] == 0.0


def test_lane_balancer_eligible_subset():
    from repro.hw.scheduler.rass import LaneLoadBalancer

    bal = LaneLoadBalancer(n_lanes=3)
    bal.pick(1.0, eligible=[1, 2])
    bal.pick(1.0, eligible=[1, 2])
    assert bal.loads[0] == 0.0  # excluded lane untouched
    with pytest.raises(ValueError):
        bal.pick(1.0, eligible=[])


def test_lane_balancer_keeps_imbalance_low_on_uniform_costs():
    from repro.hw.scheduler.rass import LaneLoadBalancer

    bal = LaneLoadBalancer(n_lanes=4)
    for _ in range(101):
        bal.pick(1.0)
    assert bal.imbalance <= 1.0  # greedy on unit costs is near-perfect


def test_lane_balancer_validates():
    from repro.hw.scheduler.rass import LaneLoadBalancer

    with pytest.raises(ValueError):
        LaneLoadBalancer(n_lanes=0)
    with pytest.raises(ValueError):
        LaneLoadBalancer(n_lanes=2, loads=[0.0])
    with pytest.raises(ValueError):
        LaneLoadBalancer(n_lanes=1).pick(-1.0)
