"""Unit tests for :mod:`repro.obs.metrics`: instruments, registry, exports.

The registry is the export surface of the telemetry plane, so these tests
pin the wire shapes other components rely on: the flat JSON snapshot the
cluster workers piggyback, the Prometheus text rendering a ``/metrics``
endpoint would serve, and the cross-worker :func:`merge_snapshots` fold.
"""

import json

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    register_stats_gauges,
)


# ------------------------------------------------------------------ counters
def test_counter_accumulates_and_rejects_decrease():
    c = Counter("events_total")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError, match="cannot decrease"):
        c.inc(-1)


# -------------------------------------------------------------------- gauges
def test_gauge_set_and_callback_sources():
    g = Gauge("occupancy")
    assert g.value == 0.0
    g.set(4)
    assert g.value == 4.0
    g.set_callback(lambda: 7.0)
    assert g.value == 7.0
    g.set(1.0)  # an explicit set replaces the callback
    assert g.value == 1.0


def test_gauge_callback_exception_reads_zero():
    g = Gauge("dead_provider")

    def boom() -> float:
        raise RuntimeError("provider retired")

    g.set_callback(boom)
    assert g.value == 0.0


# ---------------------------------------------------------------- histograms
def test_histogram_rejects_bad_buckets():
    with pytest.raises(ValueError, match="strictly"):
        Histogram("h", buckets=(1.0, 1.0, 2.0))
    with pytest.raises(ValueError, match="positive"):
        Histogram("h", buckets=(0.0, 1.0))
    with pytest.raises(ValueError, match="positive"):
        Histogram("h", buckets=())


def test_histogram_counts_sum_and_overflow():
    h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 1.5, 3.0, 100.0):
        h.observe(v)
    assert h.count == 4
    assert h.sum == pytest.approx(105.0)
    # counts: (<=1], (1,2], (2,4], overflow
    assert h.bucket_counts() == [1, 1, 1, 1]


def test_histogram_quantile_interpolates_within_bucket():
    h = Histogram("lat", buckets=(1.0, 2.0))
    for _ in range(10):
        h.observe(1.5)  # all land in the (1, 2] bucket
    # the median target sits halfway through the bucket's count:
    # lo + (hi-lo) * (5/10) = 1.5
    assert h.quantile(0.5) == pytest.approx(1.5)
    assert h.p50 == pytest.approx(1.5)
    # the extreme quantiles stay inside the landing bucket
    assert 1.0 <= h.quantile(0.01) <= 2.0
    assert 1.0 <= h.p99 <= 2.0


def test_histogram_quantile_clamps_overflow_and_handles_empty():
    h = Histogram("lat", buckets=(1.0, 2.0))
    assert h.p50 == 0.0  # empty
    h.observe(50.0)
    assert h.p50 == 2.0  # overflow clamps to the last finite bound
    with pytest.raises(ValueError, match="outside"):
        h.quantile(1.5)


def test_default_buckets_are_strictly_increasing():
    assert all(
        a < b for a, b in zip(DEFAULT_LATENCY_BUCKETS, DEFAULT_LATENCY_BUCKETS[1:])
    )
    assert DEFAULT_LATENCY_BUCKETS[0] > 0


# ------------------------------------------------------------------ registry
def test_registry_get_or_create_is_idempotent():
    reg = MetricsRegistry()
    assert reg.counter("a_total") is reg.counter("a_total")
    assert reg.histogram("lat") is reg.histogram("lat")
    assert reg.gauge("g") is reg.gauge("g")
    assert reg.info("i") is reg.info("i")


def test_registry_kind_mismatch_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ValueError, match="already registered as counter"):
        reg.histogram("x")


def test_registry_snapshot_shape_is_json_safe():
    reg = MetricsRegistry()
    reg.counter("req_total").inc(3)
    reg.gauge("pending").set(2)
    reg.histogram("lat", buckets=(1.0, 2.0)).observe(1.5)
    reg.info("build").update({"kernel": "fused"})
    snap = reg.snapshot()
    json.dumps(snap)  # wire shape: must be JSON-serializable as-is
    assert snap["counters"] == {"req_total": 3.0}
    assert snap["gauges"] == {"pending": 2.0}
    h = snap["histograms"]["lat"]
    assert h["buckets"] == [1.0, 2.0]
    assert h["counts"] == [0, 1, 0]
    assert h["count"] == 1
    assert h["sum"] == pytest.approx(1.5)
    assert {"p50", "p90", "p99"} <= set(h)
    assert snap["infos"] == {"build": {"kernel": "fused"}}


def test_registry_prometheus_rendering():
    reg = MetricsRegistry()
    reg.counter("req_total", help="requests served").inc(2)
    reg.gauge("pending").set(1)
    h = reg.histogram("lat", buckets=(0.5, 1.0))
    h.observe(0.2)
    h.observe(0.7)
    h.observe(9.0)
    reg.info("kernels").update({"predict": "fused"})
    text = reg.render_prometheus()
    assert "# HELP req_total requests served" in text
    assert "# TYPE req_total counter" in text
    assert "req_total 2" in text
    assert "# TYPE pending gauge" in text
    # histogram buckets are cumulative, with a final +Inf bucket
    assert 'lat_bucket{le="0.5"} 1' in text
    assert 'lat_bucket{le="1"} 2' in text
    assert 'lat_bucket{le="+Inf"} 3' in text
    assert "lat_sum 9.9" in text
    assert "lat_count 3" in text
    assert 'kernels{predict="fused"} 1' in text


def test_registry_snapshot_evaluates_callbacks_outside_its_lock():
    # A gauge callback that itself touches the registry must not deadlock.
    reg = MetricsRegistry()
    reg.gauge("reentrant", callback=lambda: float(len(reg.snapshot()["gauges"])))
    # Just evaluating it proves no self-deadlock; the inner snapshot sees
    # the same single gauge.
    assert reg.snapshot()["gauges"]["reentrant"] == 1.0


# ------------------------------------------------------------- merging
def test_merge_snapshots_sums_counters_gauges_and_histograms():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.counter("req_total").inc(2)
    b.counter("req_total").inc(3)
    a.gauge("pending").set(1)
    b.gauge("pending").set(2)
    for reg, values in ((a, (0.2, 0.7)), (b, (0.7,))):
        h = reg.histogram("lat", buckets=(0.5, 1.0))
        for v in values:
            h.observe(v)
    a.info("kernels").update({"predict": "fused"})
    b.info("kernels").update({"stream": "tiled"})

    merged = merge_snapshots(a.snapshot(), b.snapshot(), {})
    assert merged["counters"]["req_total"] == 5.0
    assert merged["gauges"]["pending"] == 3.0
    h = merged["histograms"]["lat"]
    assert h["counts"] == [1, 2, 0]
    assert h["count"] == 3
    assert h["sum"] == pytest.approx(1.6)
    assert 0.5 <= h["p50"] <= 1.0  # re-estimated from the merged buckets
    assert merged["infos"]["kernels"] == {"predict": "fused", "stream": "tiled"}


def test_render_prometheus_snapshot_matches_live_rendering():
    # The snapshot renderer (what a gateway /metrics serves for merged
    # multi-process views) must agree with the live registry's own text
    # exposition, modulo the HELP lines a snapshot does not carry.
    reg = MetricsRegistry()
    reg.counter("req_total").inc(2)
    reg.gauge("pending").set(1)
    h = reg.histogram("lat", buckets=(0.5, 1.0))
    for v in (0.2, 0.7, 9.0):
        h.observe(v)
    reg.info("kernels").update({"predict": "fused"})
    from repro.obs import render_prometheus_snapshot

    text = render_prometheus_snapshot(reg.snapshot())
    live = [
        line for line in reg.render_prometheus().splitlines()
        if not line.startswith("# HELP")
    ]
    assert sorted(text.splitlines()) == sorted(live)
    # And it renders a merged view without needing any live registry.
    merged = merge_snapshots(reg.snapshot(), reg.snapshot())
    doubled = render_prometheus_snapshot(merged)
    assert "req_total 4" in doubled
    assert 'lat_bucket{le="+Inf"} 6' in doubled


def test_merge_snapshots_rejects_mismatched_bucket_layouts():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.histogram("lat", buckets=(0.5, 1.0)).observe(0.2)
    b.histogram("lat", buckets=(1.0, 2.0)).observe(0.2)
    with pytest.raises(ValueError, match="bucket layouts differ"):
        merge_snapshots(a.snapshot(), b.snapshot())


# ------------------------------------------------- stats-object gauge bridge
class _Stats:
    def __init__(self):
        self.hits = 4
        self.misses = 1


def test_register_stats_gauges_reads_live_attributes():
    reg = MetricsRegistry()
    stats = _Stats()
    register_stats_gauges(reg, "cache", stats, ("hits", "misses"))
    assert reg.snapshot()["gauges"] == {"cache_hits": 4.0, "cache_misses": 1.0}
    stats.hits = 9  # live view, not a copy at registration time
    assert reg.snapshot()["gauges"]["cache_hits"] == 9.0


def test_register_stats_gauges_holds_a_weakref():
    reg = MetricsRegistry()
    stats = _Stats()
    register_stats_gauges(reg, "cache", stats, ("hits",))
    assert reg.snapshot()["gauges"]["cache_hits"] == 4.0
    del stats  # retire the provider: the gauge decays to 0, no pinning
    assert reg.snapshot()["gauges"]["cache_hits"] == 0.0
