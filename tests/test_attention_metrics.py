"""Tests for fidelity metrics and the loss-budget operating curve."""

import numpy as np
import pytest

from repro.attention.metrics import (
    accuracy_loss_proxy,
    kl_divergence_rows,
    loss_to_topk_fraction,
    output_relative_error,
)


def test_zero_error_for_identical(rng):
    x = rng.normal(size=(4, 8))
    assert output_relative_error(x, x) == 0.0
    assert accuracy_loss_proxy(x, x) == 0.0


def test_relative_error_scale_invariance(rng):
    exact = rng.normal(size=(4, 8))
    approx = exact + 0.1 * rng.normal(size=(4, 8))
    e1 = output_relative_error(approx, exact)
    e2 = output_relative_error(3 * approx, 3 * exact)
    assert e1 == pytest.approx(e2)


def test_relative_error_shape_mismatch():
    with pytest.raises(ValueError):
        output_relative_error(np.zeros((2, 2)), np.zeros((3, 2)))


def test_zero_exact_rows_handled():
    exact = np.zeros((2, 4))
    approx = np.ones((2, 4))
    assert np.isfinite(output_relative_error(approx, exact))


def test_kl_zero_for_same_scores(rng):
    scores = rng.normal(size=(3, 10))
    assert kl_divergence_rows(scores, scores) == pytest.approx(0.0, abs=1e-9)


def test_kl_positive_for_different(rng):
    p = rng.normal(size=(3, 10))
    q = p + rng.normal(size=(3, 10))
    assert kl_divergence_rows(p, q) > 0


def test_loss_curve_monotone_decreasing():
    keeps = [loss_to_topk_fraction(b) for b in (0.0, 0.5, 1.0, 1.5, 2.0)]
    assert all(b < a for a, b in zip(keeps, keeps[1:]))


def test_loss_curve_paper_endpoints():
    assert loss_to_topk_fraction(0.0) == pytest.approx(0.18)
    assert loss_to_topk_fraction(2.0) == pytest.approx(0.075)


def test_loss_curve_rejects_negative():
    with pytest.raises(ValueError):
        loss_to_topk_fraction(-1.0)
