"""Integration tests: SOFA attention inside a full Transformer forward pass,
and the functional pipeline feeding the cycle-level accelerator model."""

import numpy as np

from repro.attention.metrics import output_relative_error
from repro.attention.reference import dense_attention
from repro.core.config import SofaConfig
from repro.core.pipeline import SofaAttention
from repro.hw.accelerator import SofaAccelerator, shape_from_pipeline
from repro.model.config import get_model
from repro.model.transformer import Transformer
from repro.model.workloads import make_workload


def _sofa_attention_fn(top_k_fraction=0.3, tile_cols=16):
    """Adapter plugging the SOFA operator into MultiHeadAttention."""

    def attention(q, k, v):
        # Inside a Transformer, tokens/weights are not separately exposed per
        # head, so the pre-compute stage treats K's float rows as the token
        # stream with an identity projection - the same three stages run.
        cfg = SofaConfig(tile_cols=tile_cols, top_k=top_k_fraction)
        wk = np.eye(k.shape[1])
        op = SofaAttention(wk, wk, cfg)
        # K as "tokens", V supplied through the v-projection identity - but
        # the functional pipeline regenerates V from tokens; instead we run
        # selection then exact masked attention over the chosen set.
        res = op(k, q)
        from repro.attention.reference import masked_attention
        from repro.attention.topk import indices_to_mask

        mask = indices_to_mask(res.selected, k.shape[0])
        return masked_attention(q, k, v, mask)

    return attention


def test_transformer_with_sofa_attention_close_to_dense(rng):
    cfg = get_model("bert-base")
    model = Transformer.init_scaled(rng, cfg, n_layers=2, hidden=32, seq_len=64)
    x = model.embed_tokens(rng, 64)
    dense = model(x)
    sparse = model(x, attention_fn=_sofa_attention_fn(top_k_fraction=0.5))
    # generous tolerance: random weights make attention nearly uniform, the
    # worst case for top-k sparsity; the outputs must still track closely.
    err = output_relative_error(sparse, dense)
    assert err < 0.35


def test_pipeline_feeds_accelerator_model(medium_workload):
    """The functional pipeline's selection statistics drive the hw model."""
    wl = medium_workload
    cfg = SofaConfig(tile_cols=32, top_k=32)
    op = SofaAttention(wl.wk, wl.wv, cfg)
    res = op(wl.tokens, wl.q)
    shape = shape_from_pipeline(
        wl.n_queries, wl.seq_len, wl.tokens.shape[1], wl.head_dim,
        res.selected, res.assurance_triggers,
    )
    acc = SofaAccelerator(config=cfg)
    reqs = [set(map(int, row)) for row in res.selected]
    sofa_rep = acc.run(shape, kv_requirements=reqs)
    base_rep = acc.run_whole_row_baseline(shape, kv_requirements=reqs)
    assert sofa_rep.cycles < base_rep.cycles
    assert sofa_rep.kv_vector_loads <= base_rep.kv_vector_loads
    assert sofa_rep.total_energy_j < base_rep.total_energy_j


def test_sofa_output_close_to_dense_on_calibrated_workload(medium_workload):
    """End-to-end fidelity: SOFA sparse output vs fully dense attention."""
    wl = medium_workload
    cfg = SofaConfig(tile_cols=32, top_k=0.2)
    op = SofaAttention(wl.wk, wl.wv, cfg)
    s = wl.fold_scale()
    res = op(wl.tokens, wl.q, k_scale=s, v_scale=s)
    dense = dense_attention(wl.q, wl.k, wl.v)
    assert output_relative_error(res.output, dense) < 0.15


def test_deterministic_end_to_end():
    a = make_workload("gpt2/wikitext2", n_queries=8, head_dim=32, seq_len=128, seed=77)
    b = make_workload("gpt2/wikitext2", n_queries=8, head_dim=32, seq_len=128, seed=77)
    cfg = SofaConfig(tile_cols=32, top_k=16)
    ra = SofaAttention(a.wk, a.wv, cfg)(a.tokens, a.q)
    rb = SofaAttention(b.wk, b.wv, cfg)(b.tokens, b.q)
    np.testing.assert_array_equal(ra.selected, rb.selected)
    np.testing.assert_allclose(ra.output, rb.output)


def test_sparsity_saves_ops_vs_dense_counting(medium_workload):
    """The pipeline's total ops must undercut dense attention op counts."""
    from repro.numerics.complexity import matmul_ops, softmax_ops

    wl = medium_workload
    cfg = SofaConfig(tile_cols=32, top_k=0.1)
    res = SofaAttention(wl.wk, wl.wv, cfg)(wl.tokens, wl.q)
    t, s, d = wl.n_queries, wl.seq_len, wl.head_dim
    dense = (
        matmul_ops(t, d, s).normalized()
        + softmax_ops(t, s).normalized()
        + matmul_ops(t, s, d).normalized()
        + 2 * matmul_ops(s, wl.tokens.shape[1], d).normalized()  # full KV gen
    )
    assert res.total_ops.normalized() < dense


def test_accelerator_report_consistency(medium_workload):
    wl = medium_workload
    cfg = SofaConfig(tile_cols=32, top_k=32)
    res = SofaAttention(wl.wk, wl.wv, cfg)(wl.tokens, wl.q)
    shape = shape_from_pipeline(
        wl.n_queries, wl.seq_len, wl.tokens.shape[1], wl.head_dim,
        res.selected, res.assurance_triggers,
    )
    rep = SofaAccelerator(config=cfg).run(shape)
    assert rep.latency_s > 0
    assert rep.throughput_gops > 0
    assert 0 < rep.pipeline_speedup <= 3.0
