"""Socket-transport tests: cross-transport parity, frames on the wire,
worker death, reconnection (marker: ``socket``).

The tentpole contract: the frontend is transport-blind, so serving over
length-prefixed TCP frames to standalone worker processes must be
**bit-identical** to serving over ``multiprocessing`` queues - outputs,
selected indices, op counts, stage traces - for every routing policy,
through dedup, and through a mid-stream worker kill followed by an
auto-respawn serving new traffic (the differential sweep below).
"""

import subprocess
import sys
import time

import numpy as np
import pytest

from repro.cluster import (
    EngineCluster,
    POLICIES,
    SupervisorConfig,
)
from repro.cluster.transport import parse_address
from repro.core.config import SofaConfig
from repro.engine import AttentionRequest, SofaEngine
from repro.utils.rng import make_rng

pytestmark = pytest.mark.socket

CFG = SofaConfig(tile_cols=16, top_k=0.25)
SHAPES = (32, 48)

#: Supervision tuned for test pace: fast heartbeats, fast respawn, but a
#: timeout far above any batch these tiny shapes can take.
FAST_SUPERVISOR = SupervisorConfig(
    heartbeat_interval_s=0.05,
    heartbeat_timeout_s=5.0,
    backoff_initial_s=0.02,
    backoff_max_s=0.5,
)


def _make_requests(seed: int, n: int, cache_keys: bool = False) -> list[AttentionRequest]:
    rng = make_rng(seed)
    return [
        AttentionRequest(
            tokens=rng.integers(-100, 100, size=(SHAPES[i % 2], 8)).astype(np.float64),
            q=rng.normal(size=(3, 8)),
            wk=rng.normal(size=(8, 8)),
            wv=rng.normal(size=(8, 8)),
            cache_key=f"seq-{i}" if cache_keys else None,
        )
        for i in range(n)
    ]


def _assert_bit_identical(ref, got):
    assert len(ref) == len(got)
    for a, b in zip(ref, got):
        assert a.output.tobytes() == b.output.tobytes()
        assert np.array_equal(a.selected, b.selected)
        assert a.total_ops.counts == b.total_ops.counts
        assert [s.name for s in a.stages] == [s.name for s in b.stages]
        for sa, sb in zip(a.stages, b.stages):
            assert sa.ops.counts == sb.ops.counts


def _wait_for_recovery(cluster, before: int, timeout_s: float = 20.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        stats = cluster.stats
        if stats.n_respawns + stats.n_reconnects > before:
            return
        cluster.poll(0.05)
    raise AssertionError("supervision never recovered the worker")


@pytest.fixture(scope="module")
def reference_results():
    requests = _make_requests(seed=11, n=10)
    with SofaEngine(CFG) as engine:
        return requests, engine.run(requests)


def test_socket_cluster_bit_identical_and_reports_transport(reference_results):
    requests, ref = reference_results
    with EngineCluster(n_workers=2, config=CFG, transport="socket") as cluster:
        got = cluster.run(requests)
        _assert_bit_identical(ref, got)
        stats = cluster.stats
        assert stats.transport == "socket"
        assert stats.n_requests == len(requests)
        assert stats.n_errors == 0


def test_transport_differential_sweep_with_midstream_kill(reference_results):
    """The acceptance sweep: for every routing policy, local and socket
    transports serve the same stream bit-identically to one engine -
    including a mid-stream worker kill, the re-routed replay of its
    in-flight requests, and post-respawn traffic on the recovered
    worker."""
    requests, ref = reference_results
    late = _make_requests(seed=12, n=6)
    with SofaEngine(CFG) as engine:
        late_ref = engine.run(late)

    for routing in POLICIES:
        per_transport = {}
        for transport in ("local", "socket"):
            with EngineCluster(
                n_workers=2,
                config=CFG,
                routing=routing,
                transport=transport,
                supervisor=FAST_SUPERVISOR,
            ) as cluster:
                # Stall worker 0, queue its crash behind the stall, then
                # submit: whatever was routed to worker 0 is in flight
                # when it dies and must replay onto the survivor.
                cluster.stall_worker(0, 0.3)
                cluster.crash_worker(0, hard=False, wait=False)
                futures = cluster.submit_many(requests)
                cluster.flush()
                got = [f.result() for f in futures]
                # Auto-respawn, then serve fresh traffic on the recovered set.
                _wait_for_recovery(cluster, before=0)
                got_late = cluster.run(late)
                stats = cluster.stats
                assert stats.n_worker_failures >= 1, (routing, transport)
                assert stats.n_errors == 0, (routing, transport)
                assert stats.n_respawns + stats.n_reconnects >= 1
                assert stats.live_workers == 2, (routing, transport)
                per_transport[transport] = got + got_late
        # Both transports: bit-identical to the single sequential engine.
        _assert_bit_identical(ref + late_ref, per_transport["local"])
        _assert_bit_identical(ref + late_ref, per_transport["socket"])


def test_socket_dedup_shares_one_execution():
    base = _make_requests(seed=21, n=1)[0]
    twin = AttentionRequest(
        tokens=base.tokens, q=base.q, wk=base.wk, wv=base.wv, tag="twin"
    )
    with EngineCluster(n_workers=2, config=CFG, transport="socket") as cluster:
        futures = cluster.submit_many([base, twin])
        cluster.flush()
        results = [f.result() for f in futures]
        assert cluster.stats.n_deduped == 1
        assert cluster.stats.n_requests == 1
        assert results[0].output.tobytes() == results[1].output.tobytes()
        assert results[0].output is not results[1].output


def test_socket_invalidate_cache_drops_across_workers():
    requests = _make_requests(seed=27, n=4, cache_keys=True)
    with EngineCluster(
        n_workers=2, config=CFG, transport="socket", routing="cache_affinity"
    ) as cluster:
        cluster.run(requests)
        assert cluster.stats.cache.misses == 4
        dropped = sum(cluster.invalidate_cache(f"seq-{i}") for i in range(4))
        assert dropped == 4


def test_socket_worker_error_routes_to_its_future_only():
    good = _make_requests(seed=24, n=2)
    bad = AttentionRequest(
        tokens=good[0].tokens, q=good[0].q, wk=good[0].wk, wv=good[0].wv,
        config=SofaConfig(tile_cols=0, top_k=4),  # explodes at execution
    )
    with EngineCluster(
        n_workers=2, config=CFG, transport="socket", routing="round_robin"
    ) as cluster:
        futures = cluster.submit_many([good[0], bad, good[1]])
        with pytest.raises(ValueError, match="tile_cols"):
            cluster.flush()
        assert futures[0].result() is not None
        assert futures[2].result() is not None
        with pytest.raises(ValueError, match="tile_cols"):
            futures[1].result()


def test_socket_worker_death_without_supervision_reroutes(reference_results):
    requests, ref = reference_results
    with EngineCluster(
        n_workers=2, config=CFG, transport="socket", routing="round_robin"
    ) as cluster:
        cluster.stall_worker(0, 0.3)
        cluster.crash_worker(0, hard=False, wait=False)
        futures = cluster.submit_many(requests)
        cluster.flush()
        _assert_bit_identical(ref, [f.result() for f in futures])
        stats = cluster.stats
        assert stats.n_worker_failures == 1
        assert stats.n_rerouted >= 1
        assert stats.live_workers == 1  # no supervisor: stays down


def test_externally_started_worker_serves_via_addresses(reference_results):
    """The multi-host shape: workers launched separately (as an operator
    would on another machine), the cluster attaching by address."""
    requests, ref = reference_results
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro.cluster.worker",
         "--listen", "127.0.0.1:0"],
        stdout=subprocess.PIPE,
    )
    try:
        line = proc.stdout.readline().decode().strip()
        address = line.split(" ", 1)[1]
        parse_address(address)  # well-formed announce
        with EngineCluster(
            config=CFG, transport="socket", worker_addresses=[address]
        ) as cluster:
            assert cluster.n_workers == 1
            got = cluster.run(requests)
            _assert_bit_identical(ref, got)
        # cluster shutdown sent "stop": the standalone worker exits cleanly
        assert proc.wait(timeout=10.0) == 0
    finally:
        proc.kill()
        proc.wait()


def test_worker_addresses_require_socket_transport():
    with pytest.raises(ValueError, match="socket"):
        EngineCluster(config=CFG, worker_addresses=["127.0.0.1:1"])


def test_transport_instance_slot_count_must_match_n_workers():
    from repro.cluster import SocketTransport

    transport = SocketTransport(2)  # slots allocate lazily: no spawn yet
    try:
        with pytest.raises(ValueError, match="slot"):
            EngineCluster(n_workers=4, config=CFG, transport=transport)
    finally:
        transport.close()


def test_worker_addresses_reject_transport_instance():
    from repro.cluster import SocketTransport

    transport = SocketTransport(1)
    try:
        with pytest.raises(ValueError, match="instance"):
            EngineCluster(
                config=CFG, transport=transport,
                worker_addresses=["127.0.0.1:1"],
            )
    finally:
        transport.close()


def test_unreachable_worker_address_fails_startup_loudly():
    from repro.cluster.transport import TransportError

    with pytest.raises(TransportError, match="could not reach"):
        EngineCluster(
            config=CFG,
            transport="socket",
            # TEST-NET-1 address: connect fails fast with refused/unreachable
            worker_addresses=["127.0.0.1:1"],
        )


def test_unknown_transport_rejected():
    with pytest.raises(ValueError, match="transport"):
        EngineCluster(n_workers=1, config=CFG, transport="carrier-pigeon")
