"""Admission-policy tests: every edge on a fake clock, no server.

The controller is pure (callers pass ``now``), so token-bucket refill
math, the Tailors overbook band, deadline shedding at the door and at
pop, and priority ordering are all exact assertions here - the HTTP
tests only need to prove the wiring.
"""

import pytest

from repro.gateway import (
    AdmissionController,
    GatewayConfig,
    TenantPolicy,
    TokenBucket,
)


# ------------------------------------------------------------------ TokenBucket
class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=10.0, burst=3.0, now=0.0)
        assert [bucket.try_take(0.0) for _ in range(3)] == [0.0, 0.0, 0.0]
        wait = bucket.try_take(0.0)
        assert wait == pytest.approx(0.1)  # 1 token at 10/s
        # Exactly one refill interval later the token exists again.
        assert bucket.try_take(0.1) == 0.0
        assert bucket.try_take(0.1) > 0.0

    def test_tokens_cap_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2.0, now=0.0)
        bucket.try_take(1000.0)
        assert bucket.tokens == pytest.approx(1.0)  # refilled to 2, took 1

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0, now=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5, now=0.0)


# ----------------------------------------------------------------- config shape
class TestConfigValidation:
    def test_tenant_policy(self):
        with pytest.raises(ValueError):
            TenantPolicy(rate=-1.0)
        with pytest.raises(ValueError):
            TenantPolicy(burst=0.0)

    def test_gateway_config(self):
        with pytest.raises(ValueError):
            GatewayConfig(max_queue=0)
        with pytest.raises(ValueError):
            GatewayConfig(overbook_factor=0.9)
        with pytest.raises(ValueError):
            GatewayConfig(default_deadline_s=0.0)

    def test_policy_lookup_falls_back_to_default(self):
        config = GatewayConfig(tenants={"vip": TenantPolicy(priority=0)})
        assert config.policy_for("vip").priority == 0
        assert config.policy_for("anyone") is config.default_tenant


# -------------------------------------------------------------------- admission
def make_controller(**kwargs) -> AdmissionController:
    return AdmissionController(GatewayConfig(**kwargs), now=0.0)


class TestOffer:
    def test_admit_returns_ticket(self):
        ctl = make_controller()
        decision, ticket = ctl.offer("t", now=0.0, payload="p")
        assert decision.admitted and decision.status == 200
        assert ticket is not None and ticket.payload == "p"
        assert ctl.depth == 1

    def test_zero_deadline_is_shed_at_the_door(self):
        ctl = make_controller()
        decision, ticket = ctl.offer("t", now=5.0, deadline=5.0)
        assert not decision.admitted
        assert decision.status == 503
        assert decision.reason == "deadline_expired"
        assert ticket is None and ctl.depth == 0
        assert ctl.n_shed_deadline == 1

    def test_bucket_exhaustion_mid_burst(self):
        ctl = make_controller(
            default_tenant=TenantPolicy(rate=10.0, burst=2.0)
        )
        verdicts = [ctl.offer("t", now=0.0)[0] for _ in range(4)]
        assert [v.admitted for v in verdicts] == [True, True, False, False]
        assert verdicts[2].status == 429
        # Retry-After is exactly the bucket's one-token refill horizon
        # (a rejected offer consumes nothing, so both rejects see it).
        assert verdicts[2].retry_after_s == pytest.approx(0.1)
        assert verdicts[3].retry_after_s == pytest.approx(0.1)
        # ... and honoring it admits again.
        assert ctl.offer("t", now=0.1)[0].admitted
        assert ctl.n_rate_limited == 2

    def test_tenants_rate_limit_independently(self):
        ctl = make_controller(default_tenant=TenantPolicy(rate=1.0, burst=1.0))
        assert ctl.offer("a", now=0.0)[0].admitted
        assert not ctl.offer("a", now=0.0)[0].admitted
        assert ctl.offer("b", now=0.0)[0].admitted  # b has its own bucket

    def test_queue_full_hard_caps_deadline_less_requests(self):
        ctl = make_controller(max_queue=2, overbook_factor=2.0)
        assert ctl.offer("t", now=0.0)[0].admitted
        assert ctl.offer("t", now=0.0)[0].admitted
        decision, _ = ctl.offer("t", now=0.0)  # no deadline: unsheddable
        assert not decision.admitted
        assert decision.status == 503 and decision.reason == "queue_full"
        assert decision.retry_after_s is not None
        assert ctl.n_shed_queue == 1

    def test_overbook_band_admits_only_sheddable_requests(self):
        ctl = make_controller(max_queue=2, overbook_factor=2.0)
        ctl.offer("t", now=0.0)
        ctl.offer("t", now=0.0)
        # Past nominal: a deadline-carrying request may overbook ...
        decision, _ = ctl.offer("t", now=0.0, deadline=10.0)
        assert decision.admitted
        assert ctl.depth == 3
        # ... until the overbooked bound (2 * 2 = 4) also fills.
        assert ctl.offer("t", now=0.0, deadline=10.0)[0].admitted
        decision, _ = ctl.offer("t", now=0.0, deadline=10.0)
        assert not decision.admitted and decision.reason == "queue_full"

    def test_default_deadline_makes_requests_sheddable(self):
        ctl = make_controller(max_queue=4, default_deadline_s=1.0)
        for _ in range(4):
            ctl.offer("t", now=0.0)
        # Nominal is full, but every request carries the default deadline
        # so the overbook band (int(4 * 1.25) = 5) stays open to it.
        decision, ticket = ctl.offer("t", now=0.0)
        assert decision.admitted
        assert ticket.deadline == pytest.approx(1.0)


class TestPop:
    def test_priority_then_fifo(self):
        ctl = make_controller(
            default_tenant=TenantPolicy(priority=1),
            tenants={"vip": TenantPolicy(priority=0)},
        )
        ctl.offer("slow", now=0.0, payload="a")
        ctl.offer("slow", now=0.0, payload="b")
        ctl.offer("vip", now=0.0, payload="c")
        order = [ctl.pop(0.0)[0].payload for _ in range(3)]
        assert order == ["c", "a", "b"]
        assert ctl.pop(0.0) == (None, [])

    def test_pop_sheds_expired_tickets(self):
        ctl = make_controller()
        ctl.offer("t", now=0.0, deadline=1.0, payload="dead")
        ctl.offer("t", now=0.0, deadline=10.0, payload="live")
        ticket, shed = ctl.pop(now=2.0)
        assert ticket.payload == "live"
        assert [t.payload for t in shed] == ["dead"]
        assert ctl.n_shed_deadline == 1

    def test_full_queue_of_expired_work_empties_in_one_pop(self):
        # The never-hangs guarantee: nothing live in the queue means pop
        # returns every ticket as shed, not a wedged dispatcher.
        ctl = make_controller(max_queue=8)
        for i in range(8):
            ctl.offer("t", now=0.0, deadline=0.5, payload=i)
        ticket, shed = ctl.pop(now=1.0)
        assert ticket is None
        assert sorted(t.payload for t in shed) == list(range(8))
        assert ctl.depth == 0

    def test_drain_empties_the_queue(self):
        ctl = make_controller()
        ctl.offer("t", now=0.0, payload="x")
        ctl.offer("t", now=0.0, payload="y")
        assert {t.payload for t in ctl.drain()} == {"x", "y"}
        assert ctl.depth == 0
