"""SparseDecodeSession tests: cached decode through the serving engine.

The session's contract: step-by-step decode produces bit-identical hidden
states whether or not the decode-step cache is engaged, every post-prefill
step hits once per (layer, head), and closing the session drops exactly its
own cache entries.
"""

import numpy as np
import pytest

from repro.core.config import SofaConfig
from repro.model.config import ModelConfig
from repro.model.inference import SparseDecodeSession
from repro.model.transformer import Transformer
from repro.utils.rng import make_rng

SOFA_CFG = SofaConfig(tile_cols=16, top_k=0.5)


@pytest.fixture(scope="module")
def tiny_model():
    cfg = ModelConfig(
        name="tiny",
        n_layers=2,
        hidden=32,
        n_heads=4,
        ffn_hidden=64,
        default_seq_len=64,
        family="bert",
    )
    return Transformer.init(make_rng(77), cfg)


def test_cached_decode_bit_identical_to_uncached(tiny_model):
    rng = make_rng(1)
    prompt = rng.normal(size=(20, 32))
    steps = [rng.normal(size=(1, 32)) for _ in range(4)]
    cached = SparseDecodeSession(tiny_model, SOFA_CFG, session_id="parity")
    plain = SparseDecodeSession(tiny_model, SOFA_CFG, use_cache=False)
    a = cached.prefill(prompt)
    b = plain.prefill(prompt)
    assert a.output.tobytes() == b.output.tobytes()
    for x in steps:
        a = cached.step(x)
        b = plain.step(x)
        assert a.output.tobytes() == b.output.tobytes()
    assert cached.seq_len == plain.seq_len == 24


def test_step_hit_counts_are_layers_times_heads(tiny_model):
    rng = make_rng(2)
    session = SparseDecodeSession(tiny_model, SOFA_CFG, session_id="counts")
    report = session.prefill(rng.normal(size=(16, 32)))
    n_units = tiny_model.config.n_layers * tiny_model.config.n_heads
    assert report.cache_hits == 0
    assert report.cache_misses == n_units  # cold fill: one miss per (layer, head)
    stats = session.engine.stats.cache
    for i in range(3):
        inv0 = stats.invalidations
        report = session.step(rng.normal(size=(1, 32)))
        # every (layer, head) looks up exactly once per step; the only
        # admissible miss is a quantization-scale invalidation (a new K row
        # louder than the cached prefix maximum), never a prefix mismatch
        assert report.cache_hits + report.cache_misses == n_units, f"step {i}"
        assert report.cache_misses == stats.invalidations - inv0, f"step {i}"
        assert report.seq_len == 17 + i
    assert stats.misses == stats.invalidations + n_units  # cold fill + scale bumps
    assert report.output.shape == (1, 32)


def test_multi_token_step_and_1d_input(tiny_model):
    rng = make_rng(3)
    session = SparseDecodeSession(tiny_model, SOFA_CFG)
    session.prefill(rng.normal(size=(8, 32)))
    wide = session.step(rng.normal(size=(3, 32)))  # speculative-style burst
    assert wide.output.shape == (3, 32)
    single = session.step(rng.normal(size=32))  # 1-D convenience
    assert single.output.shape == (1, 32)
    assert session.seq_len == 12


def test_close_drops_exactly_this_sessions_entries(tiny_model):
    rng = make_rng(4)
    engine_shared = SparseDecodeSession(tiny_model, SOFA_CFG, session_id="one")
    engine_shared.prefill(rng.normal(size=(8, 32)))
    other = SparseDecodeSession(
        tiny_model, SOFA_CFG, engine=engine_shared.engine, session_id="two"
    )
    other.prefill(rng.normal(size=(8, 32)))
    n_units = tiny_model.config.n_layers * tiny_model.config.n_heads
    assert engine_shared.close() == n_units
    assert other.close() == n_units
    assert engine_shared.close() == 0


def test_decode_session_validates_hidden_dim(tiny_model):
    session = SparseDecodeSession(tiny_model, SOFA_CFG)
    with pytest.raises(ValueError):
        session.step(np.zeros((2, 33)))
