"""Tests for symmetric fixed-point quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.numerics.fixed_point import (
    QuantizedTensor,
    dequantize,
    int_range,
    quantize,
    quantize_stack,
    requantize,
    saturating_add,
)


def test_int_range_symmetric():
    lo, hi = int_range(8)
    assert lo == -127 and hi == 127


def test_int_range_rejects_tiny_width():
    with pytest.raises(ValueError):
        int_range(1)


def test_quantize_saturates_extremes():
    q = quantize(np.array([-10.0, 10.0]), bits=8)
    assert q.values.min() == -127 and q.values.max() == 127


def test_quantize_zero_tensor():
    q = quantize(np.zeros(4), bits=8)
    assert q.scale == 1.0
    np.testing.assert_array_equal(q.values, np.zeros(4, dtype=np.int64))


def test_dequantize_functional_alias():
    q = quantize(np.array([1.0, -2.0]), bits=8)
    np.testing.assert_allclose(dequantize(q), q.dequantize())


def test_requantize_narrows():
    q16 = quantize(np.linspace(-1, 1, 9), bits=16)
    q4 = requantize(q16, bits=4)
    assert q4.bits == 4
    assert np.max(np.abs(q4.values)) <= 7


def test_saturating_add_clips():
    out = saturating_add(np.array([120]), np.array([120]), bits=8)
    assert out[0] == 127


@given(
    hnp.arrays(
        np.float64,
        hnp.array_shapes(max_dims=2, max_side=16),
        elements=st.floats(-1e6, 1e6, allow_nan=False),
    ),
    st.sampled_from([4, 8, 16]),
)
@settings(max_examples=60, deadline=None)
def test_quantize_roundtrip_error_bounded(x, bits):
    """Dequantized values stay within half a quantization step of the input."""
    q = quantize(x, bits)
    back = q.dequantize()
    assert np.all(np.abs(back - x) <= q.scale * 0.5 + 1e-12)


@given(
    hnp.arrays(np.float64, st.integers(1, 32), elements=st.floats(-100, 100, allow_nan=False)),
    st.sampled_from([4, 8, 16]),
)
@settings(max_examples=60, deadline=None)
def test_quantize_respects_bit_range(x, bits):
    q = quantize(x, bits)
    lo, hi = int_range(bits)
    assert q.values.min() >= lo and q.values.max() <= hi


def test_quantize_subnormal_scale_underflow_falls_back_to_unit_scale():
    """max|x| = 5e-324 makes max_abs/hi underflow to 0.0: the old code then
    divided by a zero scale.  Such tensors take the all-zero rule instead:
    scale 1.0, every code 0 (the nearest representable value)."""
    for x in (np.array([5e-324]), np.array([[5e-324, -5e-324], [0.0, 0.0]])):
        q = quantize(x, 4)
        assert q.scale == 1.0
        assert np.all(q.values == 0)
    stacked = quantize_stack(np.array([[5e-324, 0.0], [3.0, -6.0]]), 4)
    assert stacked.scales[0] == 1.0  # underflowed slice: fallback
    assert stacked.scales[1] == pytest.approx(6.0 / 7.0)  # normal slice
    assert np.all(stacked.values[0] == 0)


def test_quantized_tensor_shape_property():
    q = QuantizedTensor(values=np.zeros((2, 3), dtype=np.int64), scale=1.0, bits=8)
    assert q.shape == (2, 3)
