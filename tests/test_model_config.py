"""Tests for the model zoo configurations."""

import pytest

from repro.model.config import MODEL_ZOO, ModelConfig, get_model


def test_zoo_contains_paper_models():
    for name in (
        "bert-base", "bert-large", "gpt2", "vit-base", "pvt",
        "bloom-1b7", "llama-7b", "llama-13b",
    ):
        assert name in MODEL_ZOO


def test_head_dim_consistency():
    for cfg in MODEL_ZOO.values():
        assert cfg.hidden == cfg.head_dim * cfg.n_heads


def test_families_valid():
    assert {cfg.family for cfg in MODEL_ZOO.values()} <= {
        "nlp-encoder", "nlp-decoder", "vision"
    }


def test_get_model_error_lists_known():
    with pytest.raises(KeyError, match="bert-base"):
        get_model("nonexistent-model")


def test_invalid_head_split_rejected():
    with pytest.raises(ValueError):
        ModelConfig("bad", 2, 100, 3, 400, 128, "nlp-encoder")


def test_scaled_to_changes_only_seq_len():
    base = get_model("bert-base")
    scaled = base.scaled_to(4096)
    assert scaled.default_seq_len == 4096
    assert scaled.hidden == base.hidden
    assert scaled.n_layers == base.n_layers


def test_paper_sequence_lengths():
    assert get_model("llama-7b").default_seq_len == 4096
    assert get_model("bloom-1b7").default_seq_len == 2048
    assert get_model("pvt").default_seq_len == 3192
