"""Tests for ASCII table rendering."""

import pytest

from repro.utils.tables import format_table


def test_basic_rendering():
    out = format_table(["a", "bb"], [[1, 2], [3, 4]])
    lines = out.splitlines()
    assert lines[0].startswith("a")
    assert "-+-" in lines[1]
    assert len(lines) == 4


def test_title_prepended():
    out = format_table(["x"], [[1]], title="hello")
    assert out.splitlines()[0] == "hello"


def test_numeric_formats_applied():
    out = format_table(["v"], [[3.14159]], formats=[".2f"])
    assert "3.14" in out
    assert "3.14159" not in out


def test_format_skips_strings():
    out = format_table(["v"], [["text"]], formats=[".2f"])
    assert "text" in out


def test_column_alignment_pads_to_widest():
    out = format_table(["col"], [["short"], ["muchlongervalue"]])
    lines = out.splitlines()
    assert len(lines[2]) == len(lines[3])


def test_row_width_mismatch_raises():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])


def test_formats_length_mismatch_raises():
    with pytest.raises(ValueError):
        format_table(["a"], [[1]], formats=[".2f", ".3f"])


def test_bool_not_formatted_as_number():
    out = format_table(["flag"], [[True]], formats=[".1f"])
    assert "True" in out
