"""Tests for the SOTA accelerator specs, device models and MAT models."""

import pytest

from repro.baselines.accel_models import FIG3_PANELS, average_mat_share_at_scale, mat_breakdown
from repro.baselines.gpu import GpuModel
from repro.baselines.specs import (
    ACCELERATOR_SPECS,
    area_efficiency_gops_per_mm2,
    device_efficiency_gops_per_w,
    normalize_spec,
    protocol_latency_ms,
    table_i_rows,
)
from repro.baselines.tpu import TpuModel


# ------------------------------------------------------------------ specs
def test_all_nine_accelerators_present():
    assert len(ACCELERATOR_SPECS) == 9
    assert "sofa" in ACCELERATOR_SPECS


def test_fact_latency_matches_paper_example():
    """Sec. V-D's worked example: FACT = 2 * 137 / 928 s ~ 295 ms."""
    assert protocol_latency_ms(ACCELERATOR_SPECS["fact"]) == pytest.approx(295.3, abs=1.0)


def test_sofa_latency_matches_table():
    assert protocol_latency_ms(ACCELERATOR_SPECS["sofa"]) == pytest.approx(45.0, abs=1.0)


def test_sofa_vs_fact_latency_ratio():
    """Paper: 6.6x latency reduction over FACT."""
    ratio = protocol_latency_ms(ACCELERATOR_SPECS["fact"]) / protocol_latency_ms(
        ACCELERATOR_SPECS["sofa"]
    )
    assert ratio == pytest.approx(6.6, abs=0.2)


def test_device_efficiency_none_without_io_power():
    assert device_efficiency_gops_per_w(ACCELERATOR_SPECS["fact"]) is None
    assert device_efficiency_gops_per_w(ACCELERATOR_SPECS["sofa"]) is not None


def test_sofa_device_efficiency_near_published():
    eff = device_efficiency_gops_per_w(ACCELERATOR_SPECS["sofa"])
    assert eff == pytest.approx(7183, rel=0.05)


def test_normalization_shrinks_old_nodes():
    spec = ACCELERATOR_SPECS["a3"]  # 40nm
    norm = normalize_spec(spec)
    assert norm["area_mm2"] < spec.area_mm2
    assert norm["core_power_w"] < spec.core_power_w


def test_area_efficiency_positive_for_all():
    for spec in ACCELERATOR_SPECS.values():
        assert area_efficiency_gops_per_mm2(spec) > 0


def test_table_i_only_sofa_covers_everything():
    full = [row[0] for row in table_i_rows() if all(row[1:])]
    assert full == ["sofa"]


# ------------------------------------------------------------- gpu / tpu
def test_gpu_lp_speedup_in_paper_band():
    """Paper: LP alone yields 1.08-1.78x on the A100."""
    gpu = GpuModel()
    assert 1.0 < gpu.lp_speedup(0.6) < gpu.lp_speedup(0.93) < 2.0


def test_gpu_software_chain_near_316():
    """LP + FA2 at the 2%-loss operating point lands near the paper's 3.16x."""
    gpu = GpuModel()
    assert gpu.lp_fa_speedup(0.876, fa2=True) == pytest.approx(3.16, abs=0.2)


def test_gpu_fa2_beats_fa1():
    gpu = GpuModel()
    assert gpu.lp_fa_speedup(0.8, fa2=True) > gpu.lp_fa_speedup(0.8, fa2=False)


def test_gpu_energy_scales_inverse_speedup():
    gpu = GpuModel()
    e1 = gpu.attention_energy_j(100.0, speedup=1.0)
    e2 = gpu.attention_energy_j(100.0, speedup=2.0)
    assert e1 == pytest.approx(2 * e2)


def test_gpu_validates_inputs():
    gpu = GpuModel()
    with pytest.raises(ValueError):
        gpu.lp_speedup(1.5)
    with pytest.raises(ValueError):
        gpu.dense_attention_time_s(-1)


def test_tpu_software_chain_near_29():
    """Software-only SOFA on TPU lands near the paper's 2.9x."""
    tpu = TpuModel()
    chain = tpu.lp_speedup(0.876) * tpu.fa_gain
    assert chain == pytest.approx(2.9, abs=0.25)


def test_gpu_software_edge_over_tpu_is_fa2():
    """GPU's software advantage over TPU comes from FlashAttention-2."""
    gpu, tpu = GpuModel(), TpuModel()
    gpu_chain = gpu.lp_fa_speedup(0.876, fa2=True)
    tpu_chain = tpu.lp_speedup(0.876) * tpu.fa_gain
    assert gpu_chain > tpu_chain


# ------------------------------------------------------------- fig3 model
def test_mat_share_grows_with_parallelism():
    for accel in ("fact", "energon"):
        for model, seq_len, t_max in FIG3_PANELS:
            low = mat_breakdown(accel, model, seq_len, 1).mat_share
            high = mat_breakdown(accel, model, seq_len, t_max).mat_share
            assert high > low


def test_mat_share_substantial_at_scale():
    """The paper's headline: memory access dominates under LTPP."""
    assert average_mat_share_at_scale() > 0.35


def test_mat_rejects_bad_parallelism():
    with pytest.raises(ValueError):
        mat_breakdown("fact", "gpt2", 1024, 0)
