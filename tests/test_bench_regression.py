"""Bench regression gate tests: the CI tier must catch a real drop.

``benchmarks/check_bench_regression.py`` is what turns the bench-smoke
job from "the benches ran" into "the recorded speedups survived".  These
tests feed it synthetic baseline/fresh pairs: equal numbers and jitter
inside the tolerance pass, an injected >20% drop fails (the acceptance
drill), and a missing file or drifted schema fails loudly instead of
silently ungating a metric.
"""

import importlib.util
import json
import pathlib
import sys

import pytest

_BENCH_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location(
        "check_bench_regression", _BENCH_DIR / "check_bench_regression.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_bench_regression", module)
    spec.loader.exec_module(module)
    return module


def _write_quick_artifacts(directory: pathlib.Path, scale: float = 1.0,
                           kernel_scale: float | None = None) -> None:
    """A minimal, schema-faithful set of quick bench artifacts."""
    directory.mkdir(parents=True, exist_ok=True)
    kernel_scale = scale if kernel_scale is None else kernel_scale
    (directory / "BENCH_engine_continuous_quick.json").write_text(json.dumps({
        "stream": {"sync_requests_per_sec": 1000.0 * scale},
        "decode": {"cached_speedup": 1.1},
    }))
    (directory / "BENCH_cluster_quick.json").write_text(json.dumps({
        "points": [
            {"workers": 1, "requests_per_sec": 900.0 * scale},
            {"workers": 2, "requests_per_sec": 1100.0 * scale},
        ],
    }))
    (directory / "BENCH_sufa_quick.json").write_text(json.dumps({
        "kernels": [
            {"blocked_vs_seed_loop": 7.5 * kernel_scale},
            {"blocked_vs_seed_loop": 6.8 * kernel_scale},
        ],
        "engine": {"blocked_requests_per_sec": 800.0 * scale},
        "fused": [
            {"fused_vs_unfused": 1.2 * kernel_scale},
        ],
        "fused_engine": {"fused_requests_per_sec": 25.0 * scale},
    }))
    # telemetry overhead is an intra-run ratio (enabled vs disabled rps)
    (directory / "BENCH_obs_quick.json").write_text(json.dumps({
        "obs_overhead_ratio": 1.0 * kernel_scale,
        "bit_identical": True,
    }))
    # hit rate gates as a ratio metric, the store-vs-store rps as a rate
    (directory / "BENCH_cache_quick.json").write_text(json.dumps({
        "paged": {"steady_hit_rate": 1.0 * kernel_scale},
        "flat": {"steady_hit_rate": 0.0},
        "paged_vs_flat_requests_per_sec": 1.4 * scale,
    }))
    # gateway overload protection: both separate-phase, both gated as rates
    (directory / "BENCH_gateway_quick.json").write_text(json.dumps({
        "overload_p99_bound_ratio": 1.2 * scale,
        "protected_completed_rps": 9.0 * scale,
    }))


def test_identical_numbers_pass(gate, tmp_path):
    _write_quick_artifacts(tmp_path / "base")
    _write_quick_artifacts(tmp_path / "fresh")
    assert gate.main(
        ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh")]
    ) == 0


def test_jitter_inside_tolerance_passes(gate, tmp_path):
    _write_quick_artifacts(tmp_path / "base")
    _write_quick_artifacts(tmp_path / "fresh", scale=0.85)  # -15% < 20%
    assert gate.main(
        ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh")]
    ) == 0


def test_improvement_never_fails(gate, tmp_path):
    _write_quick_artifacts(tmp_path / "base")
    _write_quick_artifacts(tmp_path / "fresh", scale=3.0)
    assert gate.main(
        ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh")]
    ) == 0


def test_injected_throughput_regression_fails(gate, tmp_path, capsys):
    """The acceptance drill: a synthetic >20% requests/sec drop must fail."""
    _write_quick_artifacts(tmp_path / "base")
    _write_quick_artifacts(tmp_path / "fresh", scale=0.75, kernel_scale=1.0)
    code = gate.main(
        ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh")]
    )
    assert code == 1
    err = capsys.readouterr().err
    assert "REGRESSED" not in err  # verdict lines go to stdout
    assert "sync_requests_per_sec" in err and "dropped" in err


def test_injected_kernel_speedup_regression_fails(gate, tmp_path, capsys):
    """A kernel-speedup collapse fails even when raw rates hold."""
    _write_quick_artifacts(tmp_path / "base")
    _write_quick_artifacts(tmp_path / "fresh", scale=1.0, kernel_scale=0.6)
    assert gate.main(
        ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh")]
    ) == 1
    assert "blocked_vs_seed_loop" in capsys.readouterr().err


def test_rate_tolerance_widens_only_rate_metrics(gate, tmp_path):
    """Cross-hardware runs widen the requests/sec floor without loosening
    the hardware-independent kernel-speedup gate."""
    _write_quick_artifacts(tmp_path / "base")
    _write_quick_artifacts(tmp_path / "fresh", scale=0.65, kernel_scale=1.0)
    args = ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh")]
    assert gate.main(args) == 1  # default: rates share the 20% floor
    assert gate.main(args + ["--rate-tolerance", "0.5"]) == 0
    # a collapsed speedup ratio is NOT excused by the rate knob
    _write_quick_artifacts(tmp_path / "ratio-drop", scale=1.0, kernel_scale=0.6)
    assert gate.main(
        ["--baseline", str(tmp_path / "base"),
         "--fresh", str(tmp_path / "ratio-drop"),
         "--rate-tolerance", "0.9"]
    ) == 1


def test_tolerance_is_configurable(gate, tmp_path):
    _write_quick_artifacts(tmp_path / "base")
    _write_quick_artifacts(tmp_path / "fresh", scale=0.75)
    args = ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh")]
    assert gate.main(args + ["--tolerance", "0.3"]) == 0
    assert gate.main(args + ["--tolerance", "0.1"]) == 1


def test_missing_artifact_fails_loudly(gate, tmp_path, capsys):
    _write_quick_artifacts(tmp_path / "base")
    _write_quick_artifacts(tmp_path / "fresh")
    (tmp_path / "fresh" / "BENCH_sufa_quick.json").unlink()
    assert gate.main(
        ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh")]
    ) == 1
    assert "missing" in capsys.readouterr().err


def test_schema_drift_fails_loudly(gate, tmp_path, capsys):
    _write_quick_artifacts(tmp_path / "base")
    _write_quick_artifacts(tmp_path / "fresh")
    (tmp_path / "fresh" / "BENCH_cluster_quick.json").write_text(
        json.dumps({"points": []})
    )
    assert gate.main(
        ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh")]
    ) == 1
    assert "schema drift" in capsys.readouterr().err


def test_committed_baselines_are_tracked_and_self_consistent(gate):
    """The real committed artifacts must satisfy the gate against
    themselves (every tracked file exists, every metric extracts)."""
    lines, failures = gate.compare(_BENCH_DIR, _BENCH_DIR)
    assert not failures, failures
    assert len(lines) == len(gate.METRICS)
