"""Tests for the Bayesian-optimization design-space exploration."""

import numpy as np
import pytest

from repro.core.dse import (
    TC_CHOICES,
    TOPK_CHOICES,
    BayesianDse,
    DsePoint,
    GaussianProcess,
    complexity_penalties,
    expected_improvement,
    grid_search,
)


def test_point_bc_conversion():
    point = DsePoint(tc_per_layer=(4, 8), top_k=0.2)
    assert point.bc_per_layer(256) == (64, 32)


def test_penalties_tension():
    """L_cmp rises with Bc (fewer tiles); L_exp rises with tile count."""
    coarse = DsePoint(tc_per_layer=(2,), top_k=0.2)  # big tiles
    fine = DsePoint(tc_per_layer=(32,), top_k=0.2)  # small tiles
    cmp_coarse, exp_coarse = complexity_penalties(coarse, 512)
    cmp_fine, exp_fine = complexity_penalties(fine, 512)
    assert cmp_coarse > cmp_fine
    assert exp_fine > exp_coarse


def test_gp_interpolates_training_points(rng):
    x = rng.normal(size=(12, 3))
    y = np.sin(x[:, 0]) + x[:, 1]
    gp = GaussianProcess(length_scale=2.0)
    gp.fit(x, y)
    mean, std = gp.predict(x)
    np.testing.assert_allclose(mean, y, atol=1e-3)
    assert np.all(std < 0.1)


def test_gp_uncertainty_grows_away_from_data(rng):
    x = rng.normal(size=(8, 2))
    y = x[:, 0]
    gp = GaussianProcess(length_scale=1.0)
    gp.fit(x, y)
    _, near = gp.predict(x[:1])
    _, far = gp.predict(x[:1] + 50.0)
    assert far[0] > near[0]


def test_gp_predict_before_fit_raises():
    with pytest.raises(RuntimeError):
        GaussianProcess().predict(np.zeros((1, 2)))


def test_expected_improvement_prefers_low_mean():
    mean = np.array([0.0, 1.0])
    std = np.array([0.1, 0.1])
    ei = expected_improvement(mean, std, best=0.5)
    assert ei[0] > ei[1]


def test_expected_improvement_prefers_uncertainty_when_equal():
    mean = np.array([1.0, 1.0])
    std = np.array([0.01, 1.0])
    ei = expected_improvement(mean, std, best=1.0)
    assert ei[1] > ei[0]


def _quadratic_loss(point: DsePoint) -> float:
    """Synthetic landscape with optimum at Tc=16, top_k=0.3."""
    tc_term = sum((tc - 16) ** 2 for tc in point.tc_per_layer) / 400.0
    k_term = (point.top_k - 0.3) ** 2 * 10
    return tc_term + k_term


def test_search_improves_over_random_init():
    dse = BayesianDse(_quadratic_loss, n_layers=2, seq_len=512, alpha=0.0, beta=0.0, seed=3)
    result = dse.search(n_iterations=30, n_init=6)
    best_curve = result.best_so_far
    assert best_curve[-1] <= best_curve[5]  # improved past the random phase
    assert result.best_objective < np.median(result.objectives)


def test_search_approaches_grid_oracle():
    dse = BayesianDse(_quadratic_loss, n_layers=1, seq_len=512, alpha=0.0, beta=0.0, seed=4)
    result = dse.search(n_iterations=40, n_init=8)
    oracle = grid_search(dse.objective, n_layers=1)
    # close to the exhaustive uniform-grid optimum on a smooth landscape
    assert result.best_objective <= oracle.best_objective + 0.05


def test_objective_includes_penalties():
    dse = BayesianDse(lambda p: 0.0, n_layers=2, seq_len=512, alpha=1.0, beta=1.0)
    point = DsePoint(tc_per_layer=(4, 4), top_k=0.2)
    assert dse.objective(point) > 0.0


def test_choice_spaces_match_paper():
    assert TC_CHOICES[0] == 2 and TC_CHOICES[-1] == 32
    assert TOPK_CHOICES[0] == pytest.approx(0.05)
    assert TOPK_CHOICES[-1] == pytest.approx(0.50)


def test_invalid_layer_count():
    with pytest.raises(ValueError):
        BayesianDse(lambda p: 0.0, n_layers=0, seq_len=128)


def test_history_recorded():
    dse = BayesianDse(_quadratic_loss, n_layers=1, seq_len=256, seed=5)
    result = dse.search(n_iterations=15, n_init=4)
    assert len(result.history) <= 15
    assert len(result.history) >= 4
