"""Tests for the ``python -m repro.experiments`` command-line interface."""

import pytest

from repro.experiments.__main__ import main


def test_cli_single_experiment(capsys):
    assert main(["table4"]) == 0
    out = capsys.readouterr().out
    assert "Table IV" in out
    assert "overall" in out


def test_cli_quick_flag(capsys):
    assert main(["fig8", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "type-II%" in out


def test_cli_unknown_experiment():
    with pytest.raises(KeyError):
        main(["fig99"])


def test_cli_cheap_tables_render(capsys):
    for exp in ("table1", "table2", "table3"):
        assert main([exp]) == 0
    out = capsys.readouterr().out
    assert "sofa" in out
    assert "headline:" in out
