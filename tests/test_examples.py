"""Smoke tests: every example script must run end to end.

Examples are user-facing documentation; a broken example is a broken
deliverable, so each one executes in-process (reduced output captured).
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_complete():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report
