"""Tests for SADS distributed sorting invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.attention.topk import exact_topk_indices, topk_recall
from repro.core.config import SadsConfig
from repro.core.sads import SadsSorter, vanilla_sort_ops
from repro.model.workloads import synthetic_scores
from repro.utils.rng import make_rng


def _sorter(n=4, radius=4.0, rounds=2):
    return SadsSorter(SadsConfig(n_segments=n, radius=radius, adjust_rounds=rounds))


def test_returns_exactly_k_unique_indices(rng):
    row = rng.normal(size=128)
    res = _sorter().select_row(row, 16)
    assert res.indices.shape == (16,)
    assert np.unique(res.indices).size == 16


def test_indices_sorted_by_descending_score(rng):
    row = rng.normal(size=128)
    res = _sorter().select_row(row, 16)
    vals = row[res.indices]
    assert np.all(np.diff(vals) <= 1e-12)


def test_single_segment_equals_exact_topk(rng):
    """n=1 degenerates to the exact full-row top-k."""
    row = rng.normal(size=96)
    res = _sorter(n=1).select_row(row, 10)
    exact = exact_topk_indices(row[None, :], 10)[0]
    assert set(map(int, res.indices)) == set(map(int, exact))


def test_global_max_always_captured(rng):
    """The clipping radius must never drop the row maximum."""
    for seed in range(10):
        row = make_rng(seed).normal(size=200)
        res = _sorter(n=8, radius=1.0).select_row(row, 8)
        assert int(np.argmax(row)) in set(map(int, res.indices))


@given(
    hnp.arrays(np.float64, st.integers(32, 160),
               elements=st.floats(-50, 50, allow_nan=False)),
    st.integers(2, 8),
    st.integers(1, 16),
)
@settings(max_examples=50, deadline=None)
def test_selection_invariants_hold(row, n, k):
    """For any inputs: k unique valid indices, descending order."""
    k = min(k, row.size)
    res = SadsSorter(SadsConfig(n_segments=n)).select_row(row, k)
    assert res.indices.shape == (k,)
    assert np.unique(res.indices).size == k
    assert res.indices.min() >= 0 and res.indices.max() < row.size


def test_recall_high_on_type2_distribution():
    """DCE: distributed selection loses little on Type-II dominated rows."""
    rng = make_rng(41)
    scores = synthetic_scores(rng, 16, 256, "nlp-encoder")
    k = 32
    res = _sorter(n=4).select(scores, k)
    assert topk_recall(res.indices, scores, k) > 0.85


def test_recall_degrades_gracefully_with_segments():
    rng = make_rng(42)
    scores = synthetic_scores(rng, 8, 256, "nlp-encoder")
    k = 32
    recalls = []
    for n in (1, 4, 16):
        res = SadsSorter(SadsConfig(n_segments=n)).select(scores, k)
        recalls.append(topk_recall(res.indices, scores, k))
    assert recalls[0] == pytest.approx(1.0)
    assert recalls[-1] > 0.6  # still useful at fine tiling


def test_adjustive_exchange_repairs_type3():
    """A concentrated (Type-III) row defeats pure per-segment quotas; the
    exchange rounds must claw back misassigned slots."""
    rng = make_rng(43)
    row = rng.normal(0, 0.5, size=128)
    row[32:48] += 8.0  # all dominants in one segment
    without = SadsSorter(SadsConfig(n_segments=4, adjust_rounds=0)).select_row(row, 8)
    with_adj = SadsSorter(SadsConfig(n_segments=4, adjust_rounds=8)).select_row(row, 8)
    truth = set(map(int, exact_topk_indices(row[None, :], 8)[0]))
    hits_without = len(truth & set(map(int, without.indices)))
    hits_with = len(truth & set(map(int, with_adj.indices)))
    assert hits_with >= hits_without
    assert hits_with >= 6


def test_sads_uses_fewer_compares_than_vanilla(rng):
    scores = rng.normal(size=(8, 512))
    k = 64
    res = _sorter(n=8).select(scores, k)
    vanilla = vanilla_sort_ops(512, k).scaled(8)
    # paper: distributed sorting reduces total comparisons
    assert res.ops["compare"] < 8 * (512 / 2) * 9 * 10 / 2  # vs full bitonic
    del vanilla


def test_clipping_reduces_sorted_candidates(rng):
    """Once the running max is known, later far-below-threshold segments
    are clipped (the sphere search's power win)."""
    row = np.concatenate([make_rng(44).normal(10, 1, 28), np.full(100, -50.0)])
    res = _sorter(n=2, radius=3.0).select_row(row, 8)
    assert res.clipped > 0


def test_batch_select_shapes(rng):
    scores = rng.normal(size=(5, 64))
    res = _sorter().select(scores, 8)
    assert res.indices.shape == (5, 8)
    assert 0.0 <= res.clipped_fraction <= 1.0


def test_k_bounds_validated(rng):
    with pytest.raises(ValueError):
        _sorter().select_row(rng.normal(size=16), 0)
    with pytest.raises(ValueError):
        _sorter().select_row(rng.normal(size=16), 17)


def test_config_validation():
    with pytest.raises(ValueError):
        SadsSorter(SadsConfig(n_segments=0))
    with pytest.raises(ValueError):
        SadsSorter(SadsConfig(radius=-1.0))


def test_quota_distribution_covers_k():
    sorter = _sorter(n=4)
    quotas = sorter._segment_quotas(10, 4)
    assert quotas.sum() == 10
    assert quotas.max() - quotas.min() <= 1


@given(
    hnp.arrays(np.float64, st.integers(16, 200),
               elements=st.floats(-40, 40, allow_nan=False)),
    st.integers(1, 10),
    st.integers(1, 24),
    st.integers(0, 4),
)
@settings(max_examples=60, deadline=None)
def test_select_row_routes_through_stack_core_exactly(row, n, k, rounds):
    """select_row == the sequential reference: indices, op counts, clipping.

    select_row now runs the vectorized select_stack core on a one-row
    stack; select_row_reference keeps the sequential per-segment walk as
    the golden model.  They must agree exactly for any row, segment count,
    quota, and exchange budget.
    """
    k = min(k, row.size)
    sorter = SadsSorter(SadsConfig(n_segments=n, adjust_rounds=rounds))
    routed = sorter.select_row(row, k)
    golden = sorter.select_row_reference(row, k)
    assert np.array_equal(routed.indices, golden.indices)
    assert routed.ops["compare"] == golden.ops["compare"]
    assert routed.clipped == golden.clipped


def test_select_row_clipping_matches_reference_on_clipped_rows():
    """The sphere-clipping tallies agree on a row engineered to clip."""
    row = np.concatenate([make_rng(45).normal(10, 1, 28), np.full(100, -50.0)])
    sorter = SadsSorter(SadsConfig(n_segments=4, radius=2.0))
    routed = sorter.select_row(row, 8)
    golden = sorter.select_row_reference(row, 8)
    assert routed.clipped == golden.clipped > 0
    assert np.array_equal(routed.indices, golden.indices)
