"""Tests for top-k selection utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.attention.topk import (
    exact_topk_indices,
    indices_to_mask,
    retained_softmax_mass,
    topk_mask,
    topk_recall,
)


def test_exact_topk_sorted_descending(rng):
    scores = rng.normal(size=(4, 20))
    idx = exact_topk_indices(scores, 5)
    for i in range(4):
        vals = scores[i, idx[i]]
        assert np.all(np.diff(vals) <= 0)


def test_exact_topk_deterministic_ties():
    scores = np.zeros((1, 6))
    idx = exact_topk_indices(scores, 3)
    np.testing.assert_array_equal(idx[0], [0, 1, 2])


def test_topk_k_bounds(rng):
    scores = rng.normal(size=(2, 8))
    with pytest.raises(ValueError):
        exact_topk_indices(scores, 0)
    with pytest.raises(ValueError):
        exact_topk_indices(scores, 9)


def test_topk_mask_counts(rng):
    scores = rng.normal(size=(3, 12))
    mask = topk_mask(scores, 4)
    np.testing.assert_array_equal(mask.sum(axis=1), [4, 4, 4])


@given(
    hnp.arrays(np.float64, (4, 16), elements=st.floats(-100, 100, allow_nan=False)),
    st.integers(1, 16),
)
@settings(max_examples=50, deadline=None)
def test_topk_mask_captures_max_mass(scores, k):
    """No other k-subset can beat the exact top-k's captured score sum."""
    mask = topk_mask(scores, k)
    captured = np.sum(scores * mask, axis=1)
    sorted_scores = np.sort(scores, axis=1)[:, ::-1]
    best = sorted_scores[:, :k].sum(axis=1)
    np.testing.assert_allclose(captured, best, atol=1e-9)


def test_indices_to_mask_roundtrip(rng):
    scores = rng.normal(size=(3, 10))
    idx = exact_topk_indices(scores, 4)
    np.testing.assert_array_equal(indices_to_mask(idx, 10), topk_mask(scores, 4))


def test_indices_to_mask_bounds():
    with pytest.raises(ValueError):
        indices_to_mask(np.array([[0, 12]]), 10)


def test_recall_perfect_for_exact(rng):
    scores = rng.normal(size=(5, 30))
    idx = exact_topk_indices(scores, 6)
    assert topk_recall(idx, scores, 6) == 1.0


def test_recall_zero_for_bottom_k():
    scores = np.arange(10, dtype=np.float64)[None, :]
    worst = np.array([[0, 1, 2]])
    assert topk_recall(worst, scores, 3) == 0.0


def test_recall_accepts_mask_input(rng):
    scores = rng.normal(size=(2, 8))
    mask = topk_mask(scores, 3)
    assert topk_recall(mask, scores, 3) == 1.0


def test_retained_mass_monotone_in_k(rng):
    scores = rng.normal(size=(4, 32))
    masses = [
        retained_softmax_mass(topk_mask(scores, k), scores) for k in (2, 8, 16, 32)
    ]
    assert all(b >= a for a, b in zip(masses, masses[1:]))
    assert masses[-1] == pytest.approx(1.0)
