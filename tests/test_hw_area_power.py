"""Tests for Table III/IV area and power accounting."""

import pytest

from repro.hw.area_power import (
    SOFA_MODULES,
    lp_area_fraction,
    lp_power_fraction,
    module_power_shares,
    table_iv_power_breakdown,
    total_area_mm2,
    total_core_power_w,
)


def test_total_area_matches_paper():
    assert total_area_mm2() == pytest.approx(5.69, abs=0.01)


def test_total_power_matches_paper():
    assert total_core_power_w() == pytest.approx(0.9498, abs=0.001)


def test_lp_fractions_match_paper():
    """Paper: LP (DLZS+SADS) is ~18% of area and ~15% of power."""
    assert lp_area_fraction() == pytest.approx(0.18, abs=0.01)
    assert lp_power_fraction() == pytest.approx(0.15, abs=0.01)


def test_sufa_is_largest_module():
    largest = max(SOFA_MODULES, key=lambda m: m.area_mm2)
    assert largest.name == "sufa"


def test_power_shares_sum_to_one():
    assert sum(module_power_shares().values()) == pytest.approx(1.0)


def test_table_iv_breakdown():
    split = table_iv_power_breakdown()
    assert split["core_w"] == pytest.approx(0.95, abs=0.01)
    assert split["interface_w"] == pytest.approx(0.53, abs=0.01)
    assert split["dram_w"] == pytest.approx(1.92, abs=0.01)
    assert split["overall_w"] == pytest.approx(3.40, abs=0.02)


def test_six_modules_listed():
    assert len(SOFA_MODULES) == 6
