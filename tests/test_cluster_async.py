"""AsyncSofaClient tests: awaitable serving with the parity contract intact.

``async`` changes when the caller regains control, never a result bit:
everything awaited must be bit-identical to the synchronous path, over
both backends (cluster worker processes and an in-process engine).
"""

import asyncio

import numpy as np
import pytest

from repro.cluster import AsyncSofaClient, EngineCluster
from repro.core.config import SofaConfig
from repro.engine import AttentionRequest, SofaEngine
from repro.utils.rng import make_rng

CFG = SofaConfig(tile_cols=16, top_k=0.25)


def _requests(seed: int, n: int) -> list[AttentionRequest]:
    rng = make_rng(seed)
    return [
        AttentionRequest(
            tokens=rng.integers(-100, 100, size=(32, 8)).astype(np.float64),
            q=rng.normal(size=(2, 8)),
            wk=rng.normal(size=(8, 8)),
            wv=rng.normal(size=(8, 8)),
        )
        for _ in range(n)
    ]


def _reference(requests):
    with SofaEngine(CFG) as engine:
        return engine.run(requests)


def _assert_parity(ref, got):
    for a, b in zip(ref, got):
        assert a.output.tobytes() == b.output.tobytes()
        assert np.array_equal(a.selected, b.selected)


@pytest.mark.cluster
def test_async_run_over_cluster_bit_identical():
    requests = _requests(41, 6)
    ref = _reference(requests)

    async def main():
        async with AsyncSofaClient(EngineCluster(n_workers=2, config=CFG)) as client:
            return await client.run(requests)

    _assert_parity(ref, asyncio.run(main()))


@pytest.mark.cluster
def test_async_gather_concurrent_coroutines():
    requests = _requests(42, 6)
    ref = _reference(requests)

    async def main():
        async with AsyncSofaClient(EngineCluster(n_workers=2, config=CFG)) as client:
            results = await client.map(requests)  # one coroutine per request
            stats = client.backend.stats
            return results, stats

    results, stats = asyncio.run(main())
    _assert_parity(ref, results)
    assert stats.n_completed == len(requests)
    assert stats.pending == 0


def test_async_client_over_plain_engine():
    requests = _requests(43, 4)
    ref = _reference(requests)

    async def main():
        async with AsyncSofaClient(SofaEngine(CFG)) as client:
            return await client.run(requests)

    _assert_parity(ref, asyncio.run(main()))


def test_async_submit_nowait_then_await():
    requests = _requests(44, 2)
    ref = _reference(requests)

    async def main():
        async with AsyncSofaClient(SofaEngine(CFG)) as client:
            futures = [client.submit_nowait(r) for r in requests]
            return [await client.result(f) for f in reversed(futures)]

    got = asyncio.run(main())
    _assert_parity(ref, list(reversed(got)))


def test_poll_interval_validated():
    with pytest.raises(ValueError, match="poll_interval"):
        AsyncSofaClient(SofaEngine(CFG), poll_interval=0.0)


@pytest.mark.cluster
def test_async_error_propagates_to_awaiting_coroutine():
    good = _requests(45, 1)[0]
    bad = AttentionRequest(
        tokens=good.tokens, q=good.q, wk=good.wk, wv=good.wv,
        config=SofaConfig(tile_cols=0, top_k=4),
    )

    async def main():
        async with AsyncSofaClient(EngineCluster(n_workers=1, config=CFG)) as client:
            ok = await client.submit(good)
            with pytest.raises(ValueError, match="tile_cols"):
                await client.submit(bad)
            return ok

    assert asyncio.run(main()) is not None
