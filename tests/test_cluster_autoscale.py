"""Autoscaler tests: hysteresis on a fake clock, pool churn for real.

The policy (:class:`PoolAutoscaler`) is pure - observations in,
spawn/retire verdicts out - so flapping resistance, hold periods,
cooldown, and bounds are exact fake-clock assertions.  The integration
tests then spawn a real cluster and watch it grow under a burst and
drain back down when idle.
"""

import time

import numpy as np
import pytest

from repro.cluster import AutoscalerConfig, EngineCluster, PoolAutoscaler
from repro.core.config import SofaConfig
from repro.engine import AttentionRequest
from repro.utils.rng import make_rng

CFG = SofaConfig(tile_cols=16, top_k=0.25)


# ---------------------------------------------------------------- policy (pure)
class TestAutoscalerConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(min_workers=0)
        with pytest.raises(ValueError):
            AutoscalerConfig(min_workers=3, max_workers=2)
        with pytest.raises(ValueError):
            AutoscalerConfig(queue_high=1.0, queue_low=1.0)
        with pytest.raises(ValueError):
            AutoscalerConfig(p99_high_s=0.0)
        with pytest.raises(ValueError):
            AutoscalerConfig(cooldown_s=-1.0)


def make_scaler(**kwargs) -> PoolAutoscaler:
    defaults = dict(
        min_workers=1, max_workers=4, queue_high=4.0, queue_low=0.5,
        hold_up_s=1.0, hold_down_s=5.0, cooldown_s=2.0,
    )
    defaults.update(kwargs)
    return PoolAutoscaler(AutoscalerConfig(**defaults), now=0.0)


class TestPoolAutoscaler:
    def test_scale_up_needs_sustained_pressure(self):
        scaler = make_scaler()
        # Hot from t=2 (past cooldown), but the hold period must elapse.
        assert scaler.decide(2.0, live_workers=1, inflight=10) == 0
        assert scaler.decide(2.5, live_workers=1, inflight=10) == 0
        assert scaler.decide(3.0, live_workers=1, inflight=10) == 1

    def test_blip_resets_the_hold(self):
        scaler = make_scaler()
        scaler.decide(2.0, live_workers=1, inflight=10)
        scaler.decide(2.5, live_workers=1, inflight=0)   # pressure vanished
        assert scaler.decide(3.0, live_workers=1, inflight=10) == 0
        assert scaler.decide(4.0, live_workers=1, inflight=10) == 1

    def test_no_flapping_under_oscillating_load(self):
        # Load flips hot/cold faster than either hold period: the scaler
        # must do exactly nothing, forever.
        scaler = make_scaler(hold_up_s=1.0, hold_down_s=5.0)
        now, verdicts = 0.0, []
        for tick in range(200):
            inflight = 10 if tick % 2 == 0 else 0
            verdicts.append(scaler.decide(now, live_workers=2, inflight=inflight))
            now += 0.4  # shorter than hold_up_s
        assert verdicts == [0] * 200

    def test_scale_down_needs_long_idle(self):
        scaler = make_scaler(hold_down_s=5.0)
        for t in (2.0, 4.0, 6.9):
            assert scaler.decide(t, live_workers=3, inflight=0) == 0
        assert scaler.decide(7.0, live_workers=3, inflight=0) == -1

    def test_cooldown_separates_consecutive_actions(self):
        scaler = make_scaler(hold_up_s=0.0, cooldown_s=2.0)
        assert scaler.decide(3.0, live_workers=1, inflight=10) == 1
        # Still hot, but inside the cooldown window.
        assert scaler.decide(4.0, live_workers=2, inflight=10) == 0
        assert scaler.decide(5.5, live_workers=2, inflight=10) == 1

    def test_bounds_are_hard(self):
        scaler = make_scaler(hold_up_s=0.0, hold_down_s=0.0, cooldown_s=0.0)
        assert scaler.decide(1.0, live_workers=4, inflight=100) == 0  # at max
        assert scaler.decide(2.0, live_workers=1, inflight=0) == 0    # at min

    def test_p99_signal_triggers_scale_up(self):
        scaler = make_scaler(p99_high_s=0.5, hold_up_s=0.0)
        # Queue depth is fine; latency alone crosses the bar.
        assert scaler.decide(3.0, live_workers=2, inflight=1, p99_s=0.8) == 1

    def test_high_latency_blocks_scale_down(self):
        scaler = make_scaler(
            p99_high_s=0.5, hold_down_s=0.0, cooldown_s=0.0
        )
        assert scaler.decide(1.0, live_workers=2, inflight=0, p99_s=0.8) == 0
        assert scaler.decide(2.0, live_workers=2, inflight=0, p99_s=0.1) == -1

    def test_zero_live_workers_never_scales(self):
        # Mid-recovery the supervisor owns the pool; the scaler stands down.
        scaler = make_scaler(hold_up_s=0.0, cooldown_s=0.0)
        assert scaler.decide(1.0, live_workers=0, inflight=50) == 0


# ------------------------------------------------------------------ integration
def _requests(seed: int, n: int) -> list[AttentionRequest]:
    rng = make_rng(seed)
    return [
        AttentionRequest(
            tokens=rng.integers(-100, 100, size=(64, 8)).astype(np.float64),
            q=rng.normal(size=(4, 8)),
            wk=rng.normal(size=(8, 8)),
            wv=rng.normal(size=(8, 8)),
        )
        for _ in range(n)
    ]


AGGRESSIVE = AutoscalerConfig(
    min_workers=1, max_workers=3, queue_high=2.0, queue_low=0.25,
    hold_up_s=0.0, hold_down_s=0.15, cooldown_s=0.0,
)


@pytest.mark.cluster
class TestClusterAutoscaling:
    def test_pool_grows_under_burst_and_drains_when_idle(self):
        with EngineCluster(
            n_workers=1, config=CFG, supervisor=True, autoscaler=AGGRESSIVE
        ) as cluster:
            futures = [cluster.submit(r) for r in _requests(0, 60)]
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                cluster.poll(0.02)
                if all(f.done() for f in futures):
                    break
            results = [f.result() for f in futures]
            assert len(results) == 60
            stats = cluster.stats
            assert stats.n_scale_ups >= 1
            assert stats.n_worker_failures == 0  # growth is not failure
            # Idle pumping drains the pool back to min_workers.
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                cluster.poll(0.02)
                if len(cluster.live_workers) == 1:
                    break
            stats = cluster.stats
            assert len(cluster.live_workers) == 1
            assert stats.n_scale_downs >= 1
            assert any(w.draining for w in stats.workers)
            # The shrunk pool still serves, bit-identically.
            future = cluster.submit(_requests(1, 1)[0])
            cluster.flush()
            assert future.done()

    def test_scaled_up_workers_get_fresh_identities(self):
        with EngineCluster(
            n_workers=1, config=CFG, supervisor=True, autoscaler=AGGRESSIVE
        ) as cluster:
            futures = [cluster.submit(r) for r in _requests(2, 60)]
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                cluster.poll(0.02)
                if cluster.stats.n_scale_ups >= 1:
                    break
            assert cluster.stats.n_scale_ups >= 1
            ids = [w.worker_id for w in cluster.stats.workers]
            assert len(ids) == len(set(ids))  # no identity reuse
            cluster.flush()
            assert all(f.done() for f in futures)

    def test_request_p99_surfaces_in_stats(self):
        with EngineCluster(
            n_workers=1, config=CFG, supervisor=True, autoscaler=AGGRESSIVE
        ) as cluster:
            assert cluster.stats.request_p99_s is None  # window still empty
            for r in _requests(3, 12):
                cluster.submit(r)
            cluster.flush()
            p99 = cluster.stats.request_p99_s
            assert p99 is not None and p99 > 0.0

    def test_queue_depth_hook_feeds_the_scaling_signal(self):
        # A frontend that caps dispatch concurrency (the gateway's
        # max_inflight) hides demand: cluster in-flight stays tiny no
        # matter how deep the admission queue is.  The hook folds that
        # backlog into the depth signal, so the pool grows with ZERO
        # requests actually submitted.
        with EngineCluster(
            n_workers=1, config=CFG, supervisor=True, autoscaler=AGGRESSIVE
        ) as cluster:
            cluster.set_queue_depth_hook(lambda: 50)
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                cluster.poll(0.02)
                if cluster.stats.n_scale_ups >= 1:
                    break
            assert cluster.stats.n_scale_ups >= 1
            # Detaching (and a hook that throws) leaves supervision alive.
            cluster.set_queue_depth_hook(None)
            cluster.poll(0.0)
            cluster.set_queue_depth_hook(lambda: 1 // 0)
            cluster.poll(0.0)
            future = cluster.submit(_requests(4, 1)[0])
            cluster.flush()
            assert future.done()

    def test_n_workers_above_max_is_rejected(self):
        with pytest.raises(ValueError, match="max_workers"):
            EngineCluster(
                n_workers=4,
                config=CFG,
                autoscaler=AutoscalerConfig(max_workers=2),
            )
