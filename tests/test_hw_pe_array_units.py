"""Tests for the systolic array timing model and the four engine models."""

import pytest

from repro.hw.pe_array import SystolicArray
from repro.hw.units import DlzsEngine, KvGenerationUnit, SadsEngine, SufaEngine


# --------------------------------------------------------------- pe array
def test_matmul_cycles_stream_dominated():
    arr = SystolicArray(4, 4)
    timing = arr.matmul_cycles(4, 100, 4)
    assert timing.cycles == pytest.approx(100 + 4 + 4 - 2)


def test_matmul_tiles_multiply():
    arr = SystolicArray(4, 4)
    one = arr.matmul_cycles(4, 50, 4).cycles
    four = arr.matmul_cycles(8, 50, 8).cycles
    assert four > 3 * one  # 4 output tiles, shared skew


def test_utilization_perfect_when_shapes_match():
    arr = SystolicArray(8, 8)
    timing = arr.matmul_cycles(8, 1000, 8)
    assert timing.utilization > 0.95


def test_utilization_poor_when_undersized():
    arr = SystolicArray(128, 32)
    timing = arr.matmul_cycles(4, 64, 4)
    assert timing.utilization < 0.05


def test_matmul_rejects_bad_dims():
    with pytest.raises(ValueError):
        SystolicArray(4, 4).matmul_cycles(0, 4, 4)
    with pytest.raises(ValueError):
        SystolicArray(0, 4)


def test_stream_cycles():
    arr = SystolicArray(128, 32)
    assert arr.stream_cycles(128 * 32) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        arr.stream_cycles(-1)


# ------------------------------------------------------------ dlzs engine
def test_dlzs_engine_shift_only_energy():
    eng = DlzsEngine()
    rep = eng.predict_keys(64, 512, 64)
    assert rep.ops["mul"] == 0
    assert rep.energy_j > 0


def test_dlzs_engine_zero_elimination_scales_energy():
    eng = DlzsEngine()
    full = eng.predict_keys(64, 512, 64, nonzero_fraction=1.0)
    half = eng.predict_keys(64, 512, 64, nonzero_fraction=0.5)
    assert half.energy_j == pytest.approx(full.energy_j / 2, rel=0.01)
    assert half.cycles == full.cycles  # array occupancy unchanged


def test_dlzs_engine_attention_counts_lzc():
    eng = DlzsEngine()
    rep = eng.predict_attention(128, 64, 64)
    assert rep.ops["lzc"] == 128 * 64


def test_dlzs_engine_validates_fraction():
    with pytest.raises(ValueError):
        DlzsEngine().predict_keys(8, 8, 8, nonzero_fraction=1.5)


# ------------------------------------------------------------ sads engine
def test_sads_engine_rows_beyond_cores_serialize():
    eng = SadsEngine(n_cores=128)
    one_wave = eng.sort_tile(128, 64).cycles
    two_waves = eng.sort_tile(256, 64).cycles
    assert two_waves == pytest.approx(2 * one_wave)


def test_sads_engine_survivor_fraction_cuts_compares():
    eng = SadsEngine()
    full = eng.sort_tile(128, 64, survivors_fraction=1.0)
    clipped = eng.sort_tile(128, 64, survivors_fraction=0.25)
    assert clipped.ops["compare"] < full.ops["compare"]


def test_sads_engine_comparators_pruned():
    eng = SadsEngine()
    stages = 4  # log2(16)
    full_network = (16 // 2) * stages * (stages + 1) // 2
    assert eng.comparators_per_round() < full_network


def test_sads_exchange_rounds():
    eng = SadsEngine()
    rep = eng.exchange_rounds(128, rounds=2, candidates=64)
    assert rep.ops["compare"] == 128 * 2 * 64


# ---------------------------------------------------------------- kv gen
def test_kv_gen_zero_selected_free():
    rep = KvGenerationUnit().generate(0, 512, 64)
    assert rep.cycles == 0.0 and rep.energy_j == 0.0


def test_kv_gen_counts_both_projections():
    rep = KvGenerationUnit().generate(10, 128, 64)
    assert rep.ops["mul"] == 2 * 10 * 128 * 64


# ------------------------------------------------------------ sufa engine
def test_sufa_descending_cheaper_than_ascending():
    eng = SufaEngine()
    down = eng.attend_tile(128, 16, 64, descending=True)
    up = eng.attend_tile(128, 16, 64, descending=False)
    assert down.energy_j < up.energy_j


def test_sufa_assurance_fraction_raises_cost():
    eng = SufaEngine()
    clean = eng.attend_tile(128, 16, 64, assurance_fraction=0.0)
    dirty = eng.attend_tile(128, 16, 64, assurance_fraction=0.5)
    assert dirty.energy_j > clean.energy_j
    with pytest.raises(ValueError):
        eng.attend_tile(8, 8, 8, assurance_fraction=2.0)


def test_sufa_empty_tile_free():
    rep = SufaEngine().attend_tile(128, 0, 64)
    assert rep.cycles == 0.0


def test_sufa_epilogue_divides_per_output():
    rep = SufaEngine().epilogue(128, 64)
    assert rep.ops["div"] == 128 * 64
