"""Tests for the FlashAttention-1/2 simulators and their op accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attention.flash import (
    FlashVariant,
    flash_attention,
    flash_extra_ops_vs_vanilla,
    vanilla_attention_ops,
)
from repro.attention.reference import dense_attention
from repro.utils.rng import make_rng


def _random_qkv(rng, t=8, s=40, d=16):
    return (
        rng.normal(size=(t, d)),
        rng.normal(size=(s, d)),
        rng.normal(size=(s, d)),
    )


@pytest.mark.parametrize("tile_cols", [1, 4, 7, 16, 40, 64])
def test_fa2_exact_for_any_tiling(tile_cols):
    """FlashAttention is numerically exact regardless of tile width."""
    rng = make_rng(11)
    q, k, v = _random_qkv(rng)
    res = flash_attention(q, k, v, tile_cols=tile_cols)
    np.testing.assert_allclose(res.output, dense_attention(q, k, v), atol=1e-10)


def test_fa1_exact_too():
    rng = make_rng(12)
    q, k, v = _random_qkv(rng)
    res = flash_attention(q, k, v, tile_cols=8, variant=FlashVariant.FA1)
    np.testing.assert_allclose(res.output, dense_attention(q, k, v), atol=1e-10)


def test_exp_ops_grow_with_tile_count():
    """Fig. 5's mechanism: more tiles -> more rescale exponentials."""
    rng = make_rng(13)
    q, k, v = _random_qkv(rng, s=64)
    fine = flash_attention(q, k, v, tile_cols=4).ops["exp"]
    coarse = flash_attention(q, k, v, tile_cols=32).ops["exp"]
    assert fine > coarse


def test_fa1_costs_more_divs_than_fa2():
    rng = make_rng(14)
    q, k, v = _random_qkv(rng)
    fa1 = flash_attention(q, k, v, tile_cols=8, variant=FlashVariant.FA1)
    fa2 = flash_attention(q, k, v, tile_cols=8, variant=FlashVariant.FA2)
    assert fa1.ops["div"] > fa2.ops["div"]


@given(st.integers(2, 10), st.integers(8, 64), st.sampled_from([4, 8, 16]))
@settings(max_examples=25, deadline=None)
def test_measured_extra_ops_match_closed_form(t, s, bc):
    """The simulator's tallies must equal the closed-form Fig. 5 model."""
    rng = make_rng(t * 1000 + s)
    d = 8
    q = rng.normal(size=(t, d))
    k = rng.normal(size=(s, d))
    v = rng.normal(size=(s, d))
    res = flash_attention(q, k, v, tile_cols=bc)
    vanilla = vanilla_attention_ops(t, s, d)
    closed = flash_extra_ops_vs_vanilla(t, s, d, bc)
    assert res.ops["exp"] - vanilla["exp"] == pytest.approx(closed["extra_exp"])
    assert res.ops["compare"] - vanilla["compare"] == pytest.approx(
        closed["extra_compare"]
    )
    assert res.ops["mul"] - vanilla["mul"] == pytest.approx(closed["extra_mul"])


def test_tile_count_reported():
    rng = make_rng(15)
    q, k, v = _random_qkv(rng, s=40)
    assert flash_attention(q, k, v, tile_cols=16).n_tiles == 3


def test_invalid_tile_cols():
    rng = make_rng(16)
    q, k, v = _random_qkv(rng)
    with pytest.raises(ValueError):
        flash_attention(q, k, v, tile_cols=0)


def test_inconsistent_kv_rejected():
    rng = make_rng(17)
    q, k, v = _random_qkv(rng)
    with pytest.raises(ValueError):
        flash_attention(q, k[:-1], v, tile_cols=8)


def test_sram_peak_scales_with_tile():
    rng = make_rng(18)
    q, k, v = _random_qkv(rng)
    small = flash_attention(q, k, v, tile_cols=4).sram_peak_elements
    large = flash_attention(q, k, v, tile_cols=32).sram_peak_elements
    assert large > small
