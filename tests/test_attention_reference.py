"""Tests for the dense/masked attention golden models."""

import numpy as np
import pytest

from repro.attention.reference import attention_scores, dense_attention, masked_attention
from repro.numerics.softmax import softmax


def test_scores_scaling(rng):
    q = rng.normal(size=(3, 16))
    k = rng.normal(size=(7, 16))
    np.testing.assert_allclose(attention_scores(q, k), q @ k.T / 4.0)


def test_scores_rejects_mismatched_dims(rng):
    with pytest.raises(ValueError):
        attention_scores(rng.normal(size=(3, 16)), rng.normal(size=(7, 8)))


def test_dense_attention_is_convex_combination(rng):
    """Each output row lies in the convex hull of the value rows."""
    q = rng.normal(size=(4, 8))
    k = rng.normal(size=(10, 8))
    v = rng.normal(size=(10, 3))
    out = dense_attention(q, k, v)
    assert np.all(out.min(axis=0) >= v.min(axis=0) - 1e-9)
    assert np.all(out.max(axis=0) <= v.max(axis=0) + 1e-9)


def test_dense_attention_rejects_bad_v(rng):
    with pytest.raises(ValueError):
        dense_attention(rng.normal(size=(2, 4)), rng.normal(size=(6, 4)), rng.normal(size=(5, 4)))


def test_masked_attention_full_mask_equals_dense(rng):
    q = rng.normal(size=(3, 8))
    k = rng.normal(size=(9, 8))
    v = rng.normal(size=(9, 8))
    mask = np.ones((3, 9), dtype=bool)
    np.testing.assert_allclose(masked_attention(q, k, v, mask), dense_attention(q, k, v))


def test_masked_attention_single_key_returns_value(rng):
    q = rng.normal(size=(2, 4))
    k = rng.normal(size=(5, 4))
    v = rng.normal(size=(5, 3))
    mask = np.zeros((2, 5), dtype=bool)
    mask[0, 2] = True
    mask[1, 4] = True
    out = masked_attention(q, k, v, mask)
    np.testing.assert_allclose(out[0], v[2])
    np.testing.assert_allclose(out[1], v[4])


def test_masked_attention_renormalizes(rng):
    """Masked attention equals softmax over only the selected columns."""
    q = rng.normal(size=(1, 4))
    k = rng.normal(size=(6, 4))
    v = rng.normal(size=(6, 2))
    mask = np.array([[True, False, True, True, False, False]])
    scores = attention_scores(q, k)[0, mask[0]]
    expected = softmax(scores) @ v[mask[0]]
    np.testing.assert_allclose(masked_attention(q, k, v, mask)[0], expected)


def test_masked_attention_rejects_empty_rows(rng):
    q = rng.normal(size=(2, 4))
    k = rng.normal(size=(5, 4))
    v = rng.normal(size=(5, 2))
    mask = np.zeros((2, 5), dtype=bool)
    mask[0, 1] = True  # row 1 empty
    with pytest.raises(ValueError):
        masked_attention(q, k, v, mask)


def test_masked_attention_rejects_shape_mismatch(rng):
    q = rng.normal(size=(2, 4))
    k = rng.normal(size=(5, 4))
    v = rng.normal(size=(5, 2))
    with pytest.raises(ValueError):
        masked_attention(q, k, v, np.ones((3, 5), dtype=bool))
