"""Tests for the energy model, SRAM buffers and the DRAM channel."""

import pytest

from repro.hw.dram import DramChannelModel
from repro.hw.energy import ENERGY_28NM, EnergyModel
from repro.hw.scaling import TechnologyNode
from repro.hw.sram import SramBuffer, SramCapacityError, sofa_srams
from repro.numerics.complexity import OpCounter


# ----------------------------------------------------------------- energy
def test_energy_op_ordering():
    """exp > div > mul >> add > shift: the relation every engine relies on."""
    e = ENERGY_28NM
    assert e.op_energy("exp") > e.op_energy("div") > e.op_energy("mul")
    assert e.op_energy("mul") > 10 * e.op_energy("add")
    assert e.op_energy("shift") < e.op_energy("add")


def test_energy_counter_reduction():
    counter = OpCounter()
    counter.add_op("mul", 10)
    counter.add_op("add", 100)
    e = ENERGY_28NM
    expected = 10 * e.op_energy("mul") + 100 * e.op_energy("add")
    assert e.counter_energy(counter) == pytest.approx(expected)


def test_energy_scales_down_at_smaller_node():
    e28 = EnergyModel(node=TechnologyNode(28.0))
    e45 = EnergyModel(node=TechnologyNode(45.0))
    assert e28.op_energy("mul") < e45.op_energy("mul")


def test_energy_overrides():
    e = EnergyModel(overrides={"mul": 5e-12})
    assert e.op_energy("mul") == 5e-12


def test_energy_unknown_op():
    with pytest.raises(KeyError):
        ENERGY_28NM.op_energy("bogus")


# ------------------------------------------------------------------- sram
def test_sram_capacity_enforced():
    buf = SramBuffer("t", capacity_bytes=100)
    buf.allocate("a", 60)
    with pytest.raises(SramCapacityError):
        buf.allocate("b", 50)
    buf.free("a")
    buf.allocate("b", 90)


def test_sram_reallocate_same_tag_replaces():
    buf = SramBuffer("t", capacity_bytes=100)
    buf.allocate("a", 60)
    buf.allocate("a", 90)  # replaces, not adds
    assert buf.bytes_in_use == 90


def test_sram_access_energy_grows_with_capacity():
    small = SramBuffer("s", 8 * 1024)
    big = SramBuffer("b", 512 * 1024)
    assert big.access_energy_per_byte() > small.access_energy_per_byte()


def test_sram_read_write_accounting():
    buf = SramBuffer("t", 1024, bytes_per_cycle=32)
    cycles = buf.read(64) + buf.write(64)
    assert cycles == pytest.approx(4.0)
    assert buf.total_energy_j > 0
    buf.reset_counters()
    assert buf.total_energy_j == 0.0


def test_sofa_srams_match_table3():
    srams = sofa_srams()
    assert srams["token"].capacity_bytes == 192 * 1024
    assert srams["weight"].capacity_bytes == 96 * 1024
    assert srams["temp"].capacity_bytes == 28 * 1024


def test_sram_negative_sizes_rejected():
    buf = SramBuffer("t", 100)
    with pytest.raises(ValueError):
        buf.allocate("a", -1)
    with pytest.raises(ValueError):
        buf.read(-5)


# ------------------------------------------------------------------- dram
def test_dram_table_iv_anchor():
    """Power split at 59.8 GB/s must reproduce Table IV."""
    dram = DramChannelModel()
    split = dram.power_at_bandwidth(59.8e9)
    assert split["interface_w"] == pytest.approx(0.53, abs=0.01)
    assert split["dram_w"] == pytest.approx(1.92, abs=0.01)


def test_dram_energy_per_bit_in_cited_range():
    """DRAM access energy must land inside the 5-20 pJ/bit range of [44]."""
    dram = DramChannelModel()
    pj_per_bit = dram.dram_energy_per_byte / 8 * 1e12
    assert 2.0 <= pj_per_bit <= 20.0


def test_dram_transfer_cycles():
    dram = DramChannelModel(peak_bandwidth_bytes_per_s=1e9, clock_hz=1e9)
    cycles = dram.transfer(1000)
    assert cycles == pytest.approx(1000.0)


def test_dram_accumulates_energy():
    dram = DramChannelModel()
    dram.transfer(1e6)
    assert dram.total_energy_j == pytest.approx(
        dram.interface_energy_j + dram.dram_energy_j
    )
    dram.reset_counters()
    assert dram.total_energy_j == 0.0


def test_dram_rejects_negative():
    with pytest.raises(ValueError):
        DramChannelModel().transfer(-1)
