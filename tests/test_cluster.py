"""EngineCluster tests: cross-process parity, dedup, stats, failures.

The cluster's contract extends the engine's: every result - output bits,
selected indices, op counts, stage traces - is identical to the same
request served by a single sequential engine, regardless of routing
policy, worker count, dedup, or a worker dying mid-stream.  These tests
spawn real worker processes (marker: ``cluster``).
"""

import numpy as np
import pytest

from repro.cluster import (
    ClusterError,
    EngineCluster,
    POLICIES,
    WorkerUnavailableError,
)
from repro.core.config import SofaConfig
from repro.engine import AttentionRequest, SofaEngine
from repro.model.config import ModelConfig
from repro.model.inference import SparseDecodeSession, SparseInferenceRunner
from repro.model.transformer import Transformer
from repro.utils.rng import make_rng

pytestmark = pytest.mark.cluster

CFG = SofaConfig(tile_cols=16, top_k=0.25)
SHAPES = (32, 48)  # two sequence-length classes


def _make_requests(seed: int, n: int, cache_keys: bool = False) -> list[AttentionRequest]:
    rng = make_rng(seed)
    return [
        AttentionRequest(
            tokens=rng.integers(-100, 100, size=(SHAPES[i % 2], 8)).astype(np.float64),
            q=rng.normal(size=(3, 8)),
            wk=rng.normal(size=(8, 8)),
            wv=rng.normal(size=(8, 8)),
            cache_key=f"seq-{i}" if cache_keys else None,
        )
        for i in range(n)
    ]


def _assert_bit_identical(ref, got):
    assert len(ref) == len(got)
    for a, b in zip(ref, got):
        assert a.output.tobytes() == b.output.tobytes()
        assert np.array_equal(a.selected, b.selected)
        assert a.total_ops.counts == b.total_ops.counts
        assert [s.name for s in a.stages] == [s.name for s in b.stages]


@pytest.fixture(scope="module")
def reference_results():
    requests = _make_requests(seed=11, n=10)
    with SofaEngine(CFG) as engine:
        return requests, engine.run(requests)


@pytest.mark.parametrize("routing", POLICIES)
def test_two_worker_cluster_bit_identical_each_policy(routing, reference_results):
    requests, ref = reference_results
    with EngineCluster(n_workers=2, config=CFG, routing=routing) as cluster:
        got = cluster.run(requests)
        _assert_bit_identical(ref, got)
        stats = cluster.stats
        assert stats.n_requests == len(requests)
        assert stats.n_completed == len(requests)
        assert stats.pending == 0
        assert stats.n_errors == 0
        assert sum(w.n_requests for w in stats.workers) == len(requests)


def test_dedup_shares_one_execution_bit_identically():
    rng = make_rng(21)
    base = _make_requests(seed=21, n=1)[0]
    twin = AttentionRequest(
        tokens=base.tokens, q=base.q, wk=base.wk, wv=base.wv,
        tag="duplicate", deadline=None,
    )
    other = AttentionRequest(
        tokens=base.tokens * 2, q=base.q, wk=base.wk, wv=base.wv
    )
    with EngineCluster(n_workers=2, config=CFG) as cluster:
        futures = cluster.submit_many([base, twin, other])
        cluster.flush()
        results = [f.result() for f in futures]
        stats = cluster.stats
        assert stats.n_submitted == 3
        assert stats.n_deduped == 1
        assert stats.n_requests == 2  # twin never executed
        assert results[0].output.tobytes() == results[1].output.tobytes()
        assert np.array_equal(results[0].selected, results[1].selected)
        # followers decode their own tensors - no shared mutable arrays
        assert results[0].output is not results[1].output
        assert results[0].output.tobytes() != results[2].output.tobytes()


def test_dedup_window_closes_on_resolution():
    base = _make_requests(seed=22, n=1)[0]
    with EngineCluster(n_workers=1, config=CFG) as cluster:
        cluster.run([base])
        cluster.run([base])  # window closed: executes again
        assert cluster.stats.n_deduped == 0
        assert cluster.stats.n_requests == 2


def test_dedup_disabled_executes_every_copy():
    base = _make_requests(seed=23, n=1)[0]
    with EngineCluster(n_workers=2, config=CFG, dedup=False) as cluster:
        cluster.run([base, base])
        assert cluster.stats.n_deduped == 0
        assert cluster.stats.n_requests == 2


def test_malformed_request_fails_at_submit():
    with EngineCluster(n_workers=1, config=CFG) as cluster:
        with pytest.raises(ValueError, match="2-D"):
            cluster.submit(
                AttentionRequest(
                    tokens=np.zeros(4), q=np.zeros((2, 2)),
                    wk=np.zeros((2, 2)), wv=np.zeros((2, 2)),
                )
            )
        assert cluster.stats.pending == 0


def test_worker_side_error_routes_to_its_future_only():
    good = _make_requests(seed=24, n=2)
    bad = AttentionRequest(
        tokens=good[0].tokens, q=good[0].q, wk=good[0].wk, wv=good[0].wv,
        config=SofaConfig(tile_cols=0, top_k=4),  # explodes at execution
    )
    with EngineCluster(n_workers=2, config=CFG, routing="round_robin") as cluster:
        futures = cluster.submit_many([good[0], bad, good[1]])
        with pytest.raises(ValueError, match="tile_cols"):
            cluster.flush()
        assert futures[0].result() is not None
        assert futures[2].result() is not None
        with pytest.raises(ValueError, match="tile_cols"):
            futures[1].result()
        assert cluster.stats.n_errors == 1


def test_worker_death_reroutes_in_flight_requests(reference_results):
    requests, ref = reference_results
    with EngineCluster(n_workers=2, config=CFG, routing="round_robin") as cluster:
        # Stall worker 0, queue the crash behind the stall, then submit:
        # everything routed to worker 0 sits undelivered when it dies.
        cluster.stall_worker(0, 0.5)
        cluster.crash_worker(0, hard=False, wait=False)
        futures = cluster.submit_many(requests)
        cluster.flush()
        got = [f.result() for f in futures]
        _assert_bit_identical(ref, got)
        stats = cluster.stats
        assert stats.n_worker_failures == 1
        assert stats.n_rerouted >= 1  # round robin sent some to worker 0
        assert stats.n_errors == 0
        assert stats.live_workers == 1


def test_requests_fail_only_when_no_worker_left():
    requests = _make_requests(seed=25, n=2)
    with EngineCluster(n_workers=1, config=CFG) as cluster:
        cluster.stall_worker(0, 0.5)
        cluster.crash_worker(0, hard=False, wait=False)
        futures = cluster.submit_many(requests)
        with pytest.raises(WorkerUnavailableError):
            cluster.flush()
        for future in futures:
            with pytest.raises(WorkerUnavailableError):
                future.result()
        with pytest.raises(WorkerUnavailableError):
            cluster.submit(requests[0])


def test_shutdown_fails_pending_futures_and_rejects_new_work():
    request = _make_requests(seed=26, n=1)[0]
    cluster = EngineCluster(n_workers=1, config=CFG)
    cluster.stall_worker(0, 5.0)  # pin the request in flight
    future = cluster.submit(request)
    cluster.shutdown(timeout_s=0.5)  # don't wait out the stall
    with pytest.raises(ClusterError):
        future.result()
    with pytest.raises(ClusterError):
        cluster.submit(request)
    cluster.shutdown()  # idempotent


def test_cluster_invalidate_cache_drops_across_workers():
    requests = _make_requests(seed=27, n=4, cache_keys=True)
    with EngineCluster(n_workers=2, config=CFG, routing="cache_affinity") as cluster:
        cluster.run(requests)
        assert cluster.stats.cache.misses == 4  # cold fills
        dropped = sum(cluster.invalidate_cache(f"seq-{i}") for i in range(4))
        assert dropped == 4
        assert cluster.invalidate_cache("seq-0") == 0  # already gone


def test_decode_session_accepts_cluster_as_engine():
    model_cfg = ModelConfig(
        name="tiny", n_layers=2, hidden=32, n_heads=4, ffn_hidden=64,
        default_seq_len=64, family="bert",
    )
    model = Transformer.init(make_rng(77), model_cfg)
    sofa_cfg = SofaConfig(tile_cols=16, top_k=0.5)
    rng = make_rng(31)
    prompt = rng.normal(size=(20, 32))
    steps = [rng.normal(size=(1, 32)) for _ in range(2)]

    ref = SparseDecodeSession(model, sofa_cfg, session_id="drop-in")
    ref_outs = [ref.prefill(prompt)] + [ref.step(s) for s in steps]

    with EngineCluster(
        n_workers=2, config=sofa_cfg, routing="cache_affinity"
    ) as cluster:
        session = SparseDecodeSession(
            model, sofa_cfg, engine=cluster, session_id="drop-in"
        )
        outs = [session.prefill(prompt)] + [session.step(s) for s in steps]
        for a, b in zip(ref_outs, outs):
            assert a.output.tobytes() == b.output.tobytes()
            assert (a.cache_hits, a.cache_misses) == (b.cache_hits, b.cache_misses)
        n_units = model_cfg.n_layers * model_cfg.n_heads
        assert outs[-1].cache_hits == n_units  # affinity kept every key warm
        assert session.close() == n_units


def test_inference_runner_accepts_cluster_as_engine():
    model_cfg = ModelConfig(
        name="tiny", n_layers=2, hidden=32, n_heads=4, ffn_hidden=64,
        default_seq_len=64, family="bert",
    )
    model = Transformer.init(make_rng(78), model_cfg)
    sofa_cfg = SofaConfig(tile_cols=16, top_k=0.5)
    x = make_rng(32).normal(size=(24, 32))

    ref = SparseInferenceRunner(model, sofa_cfg).run(x)
    with EngineCluster(n_workers=2, config=sofa_cfg) as cluster:
        got = SparseInferenceRunner(model, sofa_cfg, engine=cluster).run(x)
    assert got.output.tobytes() == ref.output.tobytes()
    assert got.total_ops.counts == ref.total_ops.counts


def test_stats_snapshot_merges_worker_counters():
    requests = _make_requests(seed=33, n=6, cache_keys=True)
    with EngineCluster(n_workers=2, config=CFG, routing="cache_affinity") as cluster:
        cluster.run(requests)
        cluster.run(requests)  # second pass: all hits, split across workers
        stats = cluster.stats
        assert stats.cache.misses == 6
        assert stats.cache.hits == 6
        assert stats.n_batches >= 2
        assert stats.mean_batch_heads > 0
        assert {w.worker_id for w in stats.workers} == {0, 1}
        assert all(w.alive for w in stats.workers)


def test_constructor_validation():
    with pytest.raises(ValueError, match="n_workers"):
        EngineCluster(n_workers=0)
    with pytest.raises(ValueError, match="routing"):
        EngineCluster(n_workers=1, routing="random")
