"""Tests for the multi-layer sparse inference runner."""

import numpy as np
import pytest

from repro.core.config import SofaConfig
from repro.model.config import get_model
from repro.model.inference import SparseInferenceRunner
from repro.model.transformer import Transformer
from repro.utils.rng import make_rng


@pytest.fixture(scope="module")
def small_model():
    rng = make_rng(91)
    cfg = get_model("bert-base")
    return Transformer.init_scaled(rng, cfg, n_layers=3, hidden=32, seq_len=64)


def test_sparse_inference_tracks_dense(small_model):
    rng = make_rng(92)
    x = small_model.embed_tokens(rng, 64)
    runner = SparseInferenceRunner(small_model, SofaConfig(tile_cols=16, top_k=0.5))
    report = runner.run(x)
    assert report.relative_error < 0.35


def test_error_shrinks_with_keep_fraction(small_model):
    rng = make_rng(93)
    x = small_model.embed_tokens(rng, 64)
    errors = []
    for keep in (0.15, 0.5, 0.95):
        runner = SparseInferenceRunner(small_model, SofaConfig(tile_cols=16, top_k=keep))
        errors.append(runner.run(x).relative_error)
    assert errors[0] >= errors[1] >= errors[2]
    assert errors[2] < 0.05


def test_per_layer_stats_populated(small_model):
    rng = make_rng(94)
    x = small_model.embed_tokens(rng, 64)
    runner = SparseInferenceRunner(small_model, SofaConfig(tile_cols=16, top_k=0.25))
    report = runner.run(x)
    assert len(report.layers) == 3
    for layer in report.layers:
        assert layer.ops["compare"] > 0
        assert 0 < layer.mean_selected_fraction <= 1
        assert layer.mean_selected_fraction <= layer.mean_union_fraction <= 1


def test_layer_specific_tiling(small_model):
    rng = make_rng(95)
    x = small_model.embed_tokens(rng, 64)
    runner = SparseInferenceRunner(
        small_model,
        SofaConfig(tile_cols=16, top_k=0.4),
        tile_cols_per_layer=[8, 16, 32],
    )
    report = runner.run(x)
    assert report.relative_error < 0.4


def test_tiling_list_length_validated(small_model):
    with pytest.raises(ValueError):
        SparseInferenceRunner(small_model, tile_cols_per_layer=[8, 16])


def test_total_ops_sums_layers(small_model):
    rng = make_rng(96)
    x = small_model.embed_tokens(rng, 64)
    report = SparseInferenceRunner(small_model).run(x)
    assert report.total_ops.normalized() == pytest.approx(
        sum(layer.ops.normalized() for layer in report.layers)
    )


def test_dense_output_unchanged_by_sparsity(small_model):
    """The runner's dense reference must equal a plain dense forward."""
    rng = make_rng(97)
    x = small_model.embed_tokens(rng, 64)
    report = SparseInferenceRunner(small_model).run(x)
    np.testing.assert_allclose(report.dense_output, small_model(x), atol=1e-10)
