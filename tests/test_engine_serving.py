"""Tests for the SofaEngine serving frontend: queue, scheduler, futures."""

import numpy as np
import pytest

from repro.core.config import SofaConfig
from repro.core.pipeline import SofaAttention
from repro.engine import AttentionRequest, SofaEngine
from repro.utils.rng import make_rng


def _request(rng, s=64, h=16, d=16, t=4, v=None, config=None):
    return AttentionRequest(
        tokens=rng.integers(-80, 80, size=(s, h)).astype(np.float64),
        q=rng.normal(size=(t, d)),
        wk=rng.normal(size=(h, d)),
        wv=rng.normal(size=(h, d)),
        v=v,
        config=config,
    )


def test_submit_returns_pending_future():
    engine = SofaEngine(SofaConfig(tile_cols=16, top_k=8))
    fut = engine.submit(_request(make_rng(1)))
    assert not fut.done()
    assert engine.pending == 1


def test_result_triggers_flush_lazily():
    engine = SofaEngine(SofaConfig(tile_cols=16, top_k=8))
    fut = engine.submit(_request(make_rng(2)))
    res = fut.result()  # implicit flush
    assert fut.done()
    assert engine.pending == 0
    assert res.output.shape == (4, 16)
    assert engine.stats.n_batches == 1


def test_compatible_requests_batch_together():
    engine = SofaEngine(SofaConfig(tile_cols=16, top_k=8))
    rng = make_rng(3)
    engine.submit_many([_request(rng) for _ in range(6)])
    records = engine.flush()
    assert len(records) == 1
    assert records[0].n_heads == 6
    assert engine.stats.mean_batch_heads == 6.0


def test_incompatible_shapes_split_batches():
    engine = SofaEngine(SofaConfig(tile_cols=16, top_k=8))
    rng = make_rng(4)
    engine.submit_many(
        [_request(rng, s=64), _request(rng, s=96), _request(rng, s=64)]
    )
    records = engine.flush()
    sizes = sorted(r.n_heads for r in records)
    assert sizes == [1, 2]
    lens = sorted(r.seq_len for r in records)
    assert lens == [64, 96]


def test_config_override_splits_batches():
    base = SofaConfig(tile_cols=16, top_k=8)
    other = SofaConfig(tile_cols=32, top_k=8)
    engine = SofaEngine(base)
    rng = make_rng(5)
    engine.submit_many([_request(rng), _request(rng, config=other), _request(rng)])
    records = engine.flush()
    assert len(records) == 2
    assert {r.tile_cols for r in records} == {16, 32}


def test_max_batch_heads_chunks_groups():
    engine = SofaEngine(SofaConfig(tile_cols=16, top_k=8), max_batch_heads=4)
    rng = make_rng(6)
    engine.submit_many([_request(rng) for _ in range(10)])
    records = engine.flush()
    assert [r.n_heads for r in records] == [4, 4, 2]


def test_served_results_equal_sequential_operator():
    """A request served from a mixed batch equals its standalone execution."""
    cfg = SofaConfig(tile_cols=16, top_k=12)
    engine = SofaEngine(cfg)
    rng = make_rng(7)
    requests = [_request(rng) for _ in range(5)]
    results = engine.run(requests)
    for req, res in zip(requests, results):
        seq = SofaAttention(req.wk, req.wv, cfg)(req.tokens, req.q)
        np.testing.assert_array_equal(seq.selected, res.selected)
        assert seq.output.tobytes() == res.output.tobytes()
        assert seq.assurance_triggers == res.assurance_triggers


def test_value_cache_requests_batch_and_match():
    cfg = SofaConfig(tile_cols=16, top_k=10)
    engine = SofaEngine(cfg)
    rng = make_rng(8)
    reqs = [
        _request(rng, v=rng.normal(size=(64, 8)))
        for _ in range(3)
    ]
    results = engine.run(reqs)
    assert engine.stats.n_batches == 1
    for req, res in zip(reqs, results):
        seq = SofaAttention(req.wk, req.wv, cfg)(req.tokens, req.q, v=req.v)
        assert seq.output.tobytes() == res.output.tobytes()


def test_mixed_value_cache_widths_split_batches():
    """v caches of different widths must not share a stack (Dv in the key)."""
    cfg = SofaConfig(tile_cols=16, top_k=10)
    engine = SofaEngine(cfg)
    rng = make_rng(14)
    narrow = _request(rng, v=rng.normal(size=(64, 8)))
    wide = _request(rng, v=rng.normal(size=(64, 12)))
    results = engine.run([narrow, wide])
    assert engine.stats.n_batches == 2
    assert results[0].output.shape == (4, 8)
    assert results[1].output.shape == (4, 12)


def test_successful_future_unaffected_by_sibling_failure():
    """result() on a served request must not leak another request's error."""
    from repro.core.config import SufaConfig

    cfg = SofaConfig(tile_cols=16, top_k=12, sufa=SufaConfig(max_assurance=False))
    engine = SofaEngine(cfg)
    fut_good = engine.submit(_request(make_rng(0)))
    engine.submit(_request(make_rng(1)))  # will raise during its own batch
    # reading the good result first triggers the flush; the sibling's
    # RuntimeError must stay with the sibling
    res = fut_good.result()
    assert res.output.shape == (4, 16)


def test_flush_empty_queue_is_noop():
    engine = SofaEngine(SofaConfig(tile_cols=16, top_k=8))
    assert engine.flush() == []
    assert engine.stats.n_batches == 0


def test_invalid_request_rejected_at_submit():
    """Malformed requests fail at submission, never poisoning a batch."""
    engine = SofaEngine(SofaConfig(tile_cols=16, top_k=8))
    rng = make_rng(9)
    bad = _request(rng)
    bad.tokens = rng.normal(size=(64, 12))  # hidden dim no longer matches wk
    with pytest.raises(ValueError):
        engine.submit(bad)
    bad_q = _request(rng)
    bad_q.q = rng.normal(size=(4, 5))  # head dim no longer matches wk
    with pytest.raises(ValueError):
        engine.submit(bad_q)
    bad_v = _request(rng, v=rng.normal(size=(63, 8)))  # cache rows != S
    with pytest.raises(ValueError):
        engine.submit(bad_v)
    with pytest.raises(ValueError):
        engine.submit(_request(rng, config=SofaConfig(tile_cols=16, top_k=999)))
    assert engine.pending == 0
    with pytest.raises(ValueError):
        SofaEngine(max_batch_heads=0)


def test_failing_request_does_not_strand_siblings():
    """max_assurance=False requests run unbatched; a misprediction resolves
    only the offending future with the error, and siblings still serve."""
    from repro.core.config import SufaConfig

    cfg = SofaConfig(tile_cols=16, top_k=12, sufa=SufaConfig(max_assurance=False))
    engine = SofaEngine(cfg)
    good = _request(make_rng(0))  # seed 0: ordering prediction holds
    bad = _request(make_rng(1))  # seed 1: ordering prediction is violated
    fut_good = engine.submit(good)
    fut_bad = engine.submit(bad)
    with pytest.raises(RuntimeError):
        engine.flush()
    assert fut_good.done() and fut_bad.done()
    assert engine.pending == 0
    assert fut_good.result().output.shape == (4, 16)
    with pytest.raises(RuntimeError):
        fut_bad.result()
    # only the successful request counts as served traffic
    assert engine.stats.n_requests == 1


def test_operator_cache_reuses_prepared_weights():
    """Identical weight stacks across flushes reuse one prepared operator."""
    engine = SofaEngine(SofaConfig(tile_cols=16, top_k=8))
    rng = make_rng(12)
    wk = rng.normal(size=(16, 16))
    wv = rng.normal(size=(16, 16))
    for _ in range(3):
        req = _request(make_rng(13))
        req.wk, req.wv = wk, wv
        engine.submit(req)
        engine.flush()
    assert len(engine._operators) == 1
    assert engine.stats.n_batches == 3


def test_stats_accumulate_across_flushes():
    engine = SofaEngine(SofaConfig(tile_cols=16, top_k=8))
    rng = make_rng(10)
    engine.submit_many([_request(rng) for _ in range(3)])
    engine.flush()
    engine.submit_many([_request(rng) for _ in range(2)])
    engine.flush()
    assert engine.stats.n_requests == 5
    assert engine.stats.n_batches == 2
    assert engine.stats.mean_batch_heads == pytest.approx(2.5)
