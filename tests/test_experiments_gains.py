"""Tests for the device-gain composition model behind Figs. 19-21."""

import pytest

from repro.experiments.gains import (
    ENGINE_ANCHORS,
    GainBreakdown,
    case_gains,
    case_total_at_anchor,
    energy_efficiency_gain,
)
from repro.experiments.suite import measure_case


@pytest.fixture(scope="module")
def measurement():
    return measure_case("llama-7b/wikitext2", 2.0)


def test_breakdown_total_is_product(measurement):
    g = case_gains(measurement, "gpu")
    assert g.total == pytest.approx(g.software * g.dlzs * g.sads * g.sufa * g.rass)
    assert g.hardware == pytest.approx(g.dlzs * g.sads * g.sufa * g.rass)


def test_unknown_device_rejected(measurement):
    with pytest.raises(KeyError):
        case_gains(measurement, "fpga")


def test_gains_near_anchor_at_operating_point(measurement):
    """At the 2%-loss point the engine gains must sit near the Fig. 21
    anchors (the modulations are normalized there)."""
    g = case_gains(measurement, "gpu")
    anchors = ENGINE_ANCHORS["gpu"]
    for engine in ("dlzs", "sads", "sufa", "rass"):
        assert getattr(g, engine) == pytest.approx(anchors[engine], rel=0.3)


def test_tpu_engine_asymmetry(measurement):
    """TPU benefits more from DLZS/SADS/RASS; GPU more from SU-FA."""
    gpu = case_gains(measurement, "gpu")
    tpu = case_gains(measurement, "tpu")
    assert tpu.dlzs > gpu.dlzs
    assert tpu.sads > gpu.sads
    assert tpu.rass > gpu.rass
    assert gpu.sufa > tpu.sufa


def test_speedup_grows_with_loss_budget():
    low = case_gains(measure_case("llama-7b/wikitext2", 0.0), "gpu").total
    high = case_gains(measure_case("llama-7b/wikitext2", 2.0), "gpu").total
    assert high > low


def test_energy_gain_positive_and_bounded(measurement):
    gain = energy_efficiency_gain(measurement, "gpu")
    assert 10 < gain < 200


def test_anchor_total_consistency():
    """The normalization constant must equal the anchors' product times the
    software gain at the reference reduction."""
    for device in ("gpu", "tpu"):
        anchors = ENGINE_ANCHORS[device]
        hw = anchors["dlzs"] * anchors["sads"] * anchors["sufa"] * anchors["rass"]
        assert case_total_at_anchor(device) > hw  # software factor > 1


def test_breakdown_dataclass_fields():
    g = GainBreakdown("gpu", 3.0, 1.5, 1.2, 1.2, 1.1)
    assert g.total == pytest.approx(3.0 * 1.5 * 1.2 * 1.2 * 1.1)
