"""Parity tests: the batched engine must equal the per-head pipeline exactly.

The contract of ``repro.engine`` is bit-for-bit equivalence: for any stack of
heads, :class:`BatchedSofaAttention` returns exactly the outputs, selected
indices, op counts, memory traces and assurance triggers that a Python loop
of per-head :class:`SofaAttention` calls produces.  These tests sweep
randomized shapes/configs (including tie-heavy integer-valued scores, where
sorting tie-breaks are most fragile) and compare everything exactly.
"""

import numpy as np
import pytest

from repro.core.config import SadsConfig, SofaConfig
from repro.core.pipeline import SofaAttention
from repro.core.sads import SadsSorter
from repro.engine import BatchedSofaAttention
from repro.numerics.complexity import OpCounter
from repro.utils.rng import make_rng


def _random_config(rng, s):
    tile = int(rng.choice([8, 16, 24, 32, 64]))
    k = int(rng.integers(1, s + 1))
    return SofaConfig(
        tile_cols=tile,
        top_k=k,
        sads=SadsConfig(
            n_segments=int(rng.integers(1, 9)),
            radius=float(rng.uniform(1.0, 6.0)),
            adjust_rounds=int(rng.integers(0, 4)),
        ),
    )


def _assert_head_equal(seq, bat, context=""):
    np.testing.assert_array_equal(seq.selected, bat.selected, err_msg=context)
    assert seq.output.tobytes() == bat.output.tobytes(), f"output bits differ {context}"
    assert seq.assurance_triggers == bat.assurance_triggers, context
    assert len(seq.stages) == len(bat.stages)
    for st_s, st_b in zip(seq.stages, bat.stages):
        assert st_s.name == st_b.name
        assert st_s.dram_bytes == st_b.dram_bytes, f"{st_s.name} dram {context}"
        assert st_s.sram_peak_bytes == st_b.sram_peak_bytes, f"{st_s.name} sram {context}"
        for op in set(st_s.ops.counts) | set(st_b.ops.counts):
            assert st_s.ops[op] == st_b.ops[op], f"{st_s.name}.{op} {context}"


@pytest.mark.parametrize("seed", range(24))
def test_batched_matches_per_head_loop_exactly(seed):
    """>= 20 randomized configurations, everything compared exactly."""
    rng = make_rng(1000 + seed)
    n = int(rng.integers(1, 7))
    s = int(rng.integers(16, 220))
    h = int(rng.integers(8, 40))
    d = int(rng.integers(8, 33))
    t = int(rng.integers(1, 17))
    cfg = _random_config(rng, s)
    wk = rng.normal(size=(n, h, d))
    wv = rng.normal(size=(n, h, d))
    tokens = rng.integers(-100, 100, size=(n, s, h)).astype(np.float64)
    q = rng.normal(size=(n, t, d)) * rng.uniform(0.5, 4.0)
    k_scales = rng.uniform(0.5, 2.0, size=n)
    v_scales = rng.uniform(0.5, 2.0, size=n)

    batched = BatchedSofaAttention(wk, wv, cfg)(
        tokens, q, k_scale=k_scales, v_scale=v_scales
    )
    for i in range(n):
        seq = SofaAttention(wk[i], wv[i], cfg)(
            tokens[i], q[i], k_scale=float(k_scales[i]), v_scale=float(v_scales[i])
        )
        _assert_head_equal(seq, batched.per_head[i], f"(seed={seed}, head={i})")


def test_batched_value_cache_matches_per_head():
    """The serving value-cache override preserves exact parity too."""
    rng = make_rng(77)
    n, s, h, t, dv = 4, 90, 20, 5, 12
    wk = rng.normal(size=(n, h, h))
    wv = rng.normal(size=(n, h, h))
    tokens = rng.normal(size=(n, s, h)) * 3
    q = rng.normal(size=(n, t, h))
    v = rng.normal(size=(n, s, dv))
    cfg = SofaConfig(tile_cols=32, top_k=0.25)
    batched = BatchedSofaAttention(wk, wv, cfg)(tokens, q, v=v)
    for i in range(n):
        seq = SofaAttention(wk[i], wv[i], cfg)(tokens[i], q[i], v=v[i])
        _assert_head_equal(seq, batched.per_head[i], f"(head={i})")


def test_batched_totals_aggregate_heads():
    rng = make_rng(78)
    n, s, h, d, t = 3, 64, 16, 16, 4
    wk = rng.normal(size=(n, h, d))
    wv = rng.normal(size=(n, h, d))
    tokens = rng.integers(-50, 50, size=(n, s, h)).astype(np.float64)
    q = rng.normal(size=(n, t, d))
    res = BatchedSofaAttention(wk, wv, SofaConfig(tile_cols=16, top_k=8))(tokens, q)
    assert res.n_heads == n
    assert res.outputs.shape == (n, t, d)
    assert res.selected.shape == (n, t, 8)
    total = sum(head.total_ops.normalized() for head in res.per_head)
    assert res.total_ops.normalized() == pytest.approx(total)
    assert res.total_dram_bytes == pytest.approx(
        sum(head.total_dram_bytes for head in res.per_head)
    )


def test_batched_shape_validation():
    rng = make_rng(79)
    wk = rng.normal(size=(2, 8, 8))
    wv = rng.normal(size=(2, 8, 8))
    op = BatchedSofaAttention(wk, wv, SofaConfig(tile_cols=8, top_k=4))
    with pytest.raises(ValueError):
        op(rng.normal(size=(3, 32, 8)), rng.normal(size=(2, 4, 8)))  # wrong N
    with pytest.raises(ValueError):
        op(rng.normal(size=(2, 32, 8)), rng.normal(size=(2, 4, 6)))  # wrong D
    with pytest.raises(ValueError):
        op(
            rng.normal(size=(2, 32, 8)),
            rng.normal(size=(2, 4, 8)),
            k_scale=np.ones(3),  # wrong per-head scale length
        )


@pytest.mark.parametrize("seed", range(12))
def test_sads_select_stack_matches_select_row(seed):
    """The vectorized selection core vs the sequential golden reference.

    Scores are rounded to integers so ties are everywhere - any divergence in
    stable-sort or exchange tie-breaking fails loudly.
    """
    rng = make_rng(2000 + seed)
    rows = int(rng.integers(1, 10))
    s = int(rng.integers(12, 260))
    k = int(rng.integers(1, s + 1))
    sorter = SadsSorter(
        SadsConfig(
            n_segments=int(rng.integers(1, 10)),
            radius=float(rng.uniform(0.5, 5.0)),
            adjust_rounds=int(rng.integers(0, 5)),
        )
    )
    scores = np.round(rng.normal(size=(rows, s)) * 3)
    batch = sorter.select(scores, k)
    loop_ops = OpCounter()
    loop_rows = []
    clipped = 0
    for row in scores:
        res = sorter.select_row(row, k)
        loop_rows.append(res.indices)
        loop_ops = loop_ops + res.ops
        clipped += res.clipped
    np.testing.assert_array_equal(batch.indices, np.stack(loop_rows))
    for op in set(batch.ops.counts) | set(loop_ops.counts):
        assert batch.ops[op] == loop_ops[op], op
    assert batch.clipped_fraction == pytest.approx(clipped / scores.size)
