"""Tests for deterministic RNG construction and stream derivation."""

import numpy as np

from repro.utils.rng import DEFAULT_SEED, derive_rng, make_rng


def test_default_seed_is_deterministic():
    a = make_rng().integers(0, 1 << 30, size=8)
    b = make_rng().integers(0, 1 << 30, size=8)
    np.testing.assert_array_equal(a, b)


def test_explicit_seed_changes_stream():
    a = make_rng(1).integers(0, 1 << 30, size=8)
    b = make_rng(2).integers(0, 1 << 30, size=8)
    assert not np.array_equal(a, b)


def test_none_uses_default_seed():
    a = make_rng(None).integers(0, 1 << 30, size=4)
    b = make_rng(DEFAULT_SEED).integers(0, 1 << 30, size=4)
    np.testing.assert_array_equal(a, b)


def test_derive_rng_independent_of_parent_consumption():
    parent1 = make_rng(7)
    child1 = derive_rng(parent1, "stage")
    parent2 = make_rng(7)
    child2 = derive_rng(parent2, "stage")
    np.testing.assert_array_equal(
        child1.integers(0, 100, size=5), child2.integers(0, 100, size=5)
    )


def test_derive_rng_keys_give_different_streams():
    parent = make_rng(7)
    a = derive_rng(parent, "a")
    parent2 = make_rng(7)
    b = derive_rng(parent2, "b")
    assert not np.array_equal(a.integers(0, 1 << 30, 8), b.integers(0, 1 << 30, 8))


def test_derive_rng_accepts_int_keys():
    parent = make_rng(9)
    child = derive_rng(parent, 3, "layer")
    assert child.integers(0, 10, size=1).shape == (1,)
