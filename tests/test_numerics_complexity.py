"""Tests for the arithmetic complexity model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics.complexity import (
    DEFAULT_WEIGHTS,
    OpCounter,
    OpWeights,
    matmul_ops,
    softmax_ops,
)


def test_add_and_lookup():
    c = OpCounter()
    c.add_op("mul", 3)
    assert c["mul"] == 3
    assert c["add"] == 0


def test_unknown_op_rejected():
    c = OpCounter()
    with pytest.raises(KeyError):
        c.add_op("sqrt")
    with pytest.raises(KeyError):
        _ = c["sqrt"]


def test_negative_count_rejected():
    with pytest.raises(ValueError):
        OpCounter().add_op("add", -1)


def test_counter_addition_merges():
    a, b = OpCounter(), OpCounter()
    a.add_op("add", 2)
    b.add_op("add", 3)
    b.add_op("exp", 1)
    merged = a + b
    assert merged["add"] == 5 and merged["exp"] == 1
    assert a["add"] == 2  # operands untouched


def test_normalized_uses_weights():
    c = OpCounter()
    c.add_op("mul", 2)
    c.add_op("add", 4)
    weights = OpWeights(mul=10.0, add=1.0)
    assert c.normalized(weights) == 24.0


def test_default_weights_order():
    """The cost ordering the model assumes: exp > div > mul > add > shift."""
    w = DEFAULT_WEIGHTS
    assert w.exp > w.div > w.mul > w.add > w.shift > w.xor


def test_scaled_multiplies_counts():
    c = OpCounter()
    c.add_op("mul", 3)
    s = c.scaled(2.5)
    assert s["mul"] == 7.5
    with pytest.raises(ValueError):
        c.scaled(-1)


def test_matmul_ops_counts():
    c = matmul_ops(2, 3, 4)
    assert c["mul"] == 24
    assert c["add"] == 2 * 2 * 4


def test_softmax_ops_counts():
    c = softmax_ops(2, 5)
    assert c["exp"] == 10
    assert c["compare"] == 8
    assert c["div"] == 10


@given(st.integers(1, 20), st.integers(1, 20), st.integers(1, 20))
@settings(max_examples=50, deadline=None)
def test_matmul_ops_monotone_in_dims(m, k, n):
    base = matmul_ops(m, k, n).normalized()
    grown = matmul_ops(m + 1, k, n).normalized()
    assert grown > base


def test_iteration_sorted():
    c = OpCounter()
    c.add_op("mul", 1)
    c.add_op("add", 1)
    assert [op for op, _ in c] == ["add", "mul"]


def test_total_raw():
    c = OpCounter()
    c.add_op("mul", 2)
    c.add_op("exp", 3)
    assert c.total_raw() == 5


def test_weights_cost_unknown():
    with pytest.raises(KeyError):
        DEFAULT_WEIGHTS.cost("nope")
