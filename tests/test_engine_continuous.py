"""Continuous-batching scheduler tests: admission, starvation, ordering.

The scheduler's contract: requests admitted mid-stream join not-yet-executed
shape groups, under-full groups never starve (``max_wait_batches`` rounds or
a passed ``deadline`` force execution), and every future resolves to exactly
its own request's sequential result regardless of when it was admitted.
"""

import time

import numpy as np
import pytest

from repro.core.config import SofaConfig
from repro.core.pipeline import SofaAttention
from repro.engine import AttentionRequest, SofaEngine
from repro.utils.rng import make_rng


def _request(rng, s=64, h=16, d=16, t=4, **kwargs):
    return AttentionRequest(
        tokens=rng.integers(-80, 80, size=(s, h)).astype(np.float64),
        q=rng.normal(size=(t, d)),
        wk=rng.normal(size=(h, d)),
        wv=rng.normal(size=(h, d)),
        **kwargs,
    )


CFG = SofaConfig(tile_cols=16, top_k=8)


def test_step_leaves_underfull_groups_waiting():
    engine = SofaEngine(CFG, max_batch_heads=4)
    rng = make_rng(1)
    engine.submit_many([_request(rng) for _ in range(3)])
    assert engine.step() == []  # 3 < 4: not ready, no deadline, no age bound
    assert engine.pending == 3
    assert engine.stats.n_steps == 1


def test_midstream_admission_joins_open_group():
    """Requests submitted after a round join the group formed before it."""
    engine = SofaEngine(CFG, max_batch_heads=4)
    rng = make_rng(2)
    first = engine.submit_many([_request(rng) for _ in range(3)])
    engine.step()  # under-full: stays queued
    late = engine.submit(_request(rng))  # same grid -> fills the open group
    records = engine.step()
    assert [r.n_heads for r in records] == [4]
    assert all(f.done() for f in [*first, late])
    assert engine.pending == 0


def test_full_group_executes_immediately_on_step():
    engine = SofaEngine(CFG, max_batch_heads=2)
    rng = make_rng(3)
    engine.submit_many([_request(rng) for _ in range(5)])
    records = engine.step()
    # one group of 5 ready (>= max_batch_heads) -> chunked 2/2/1
    assert [r.n_heads for r in records] == [2, 2, 1]


def test_max_wait_batches_bounds_starvation():
    """An under-full group executes after aging max_wait_batches rounds."""
    engine = SofaEngine(CFG, max_batch_heads=8, max_wait_batches=2)
    rng = make_rng(4)
    fut = engine.submit(_request(rng))
    assert engine.step() == []  # age 0 -> 1
    assert engine.step() == []  # age 1 -> 2
    records = engine.step()  # age 2 >= max_wait_batches: ready
    assert [r.n_heads for r in records] == [1]
    assert records[0].waited_rounds == 2
    assert fut.done()


def test_deadline_expired_group_executes_without_full_batch():
    engine = SofaEngine(CFG, max_batch_heads=8)
    rng = make_rng(5)
    patient = engine.submit(_request(rng, s=96))
    urgent = engine.submit(_request(rng, deadline=time.monotonic() - 1.0))
    records = engine.step()
    # only the deadline-carrying group ran; the other shape keeps waiting
    assert [r.seq_len for r in records] == [64]
    assert urgent.done() and not patient.done()
    assert engine.pending == 1


def test_future_deadline_does_not_trigger_early():
    engine = SofaEngine(CFG, max_batch_heads=8)
    rng = make_rng(6)
    engine.submit(_request(rng, deadline=time.monotonic() + 3600.0))
    assert engine.step() == []
    assert engine.pending == 1
    engine.flush()
    assert engine.pending == 0


def test_run_until_drained_with_age_bound():
    engine = SofaEngine(CFG, max_batch_heads=8, max_wait_batches=3)
    rng = make_rng(7)
    futures = engine.submit_many([_request(rng), _request(rng, s=96)])
    records = engine.run_until_drained()
    assert engine.pending == 0
    assert sum(r.n_heads for r in records) == 2
    assert all(f.done() for f in futures)
    # groups aged into readiness rather than being force-flushed
    assert all(r.waited_rounds == 3 for r in records)


def test_run_until_drained_forces_flush_without_age_bound():
    engine = SofaEngine(CFG, max_batch_heads=8)  # max_wait_batches=None
    rng = make_rng(8)
    engine.submit_many([_request(rng) for _ in range(3)])
    records = engine.run_until_drained()
    assert engine.pending == 0
    assert [r.n_heads for r in records] == [3]


def test_run_until_drained_max_rounds_cap():
    engine = SofaEngine(CFG, max_batch_heads=8, max_wait_batches=1000)
    rng = make_rng(9)
    engine.submit(_request(rng))
    records = engine.run_until_drained(max_rounds=2)
    assert engine.pending == 0
    assert sum(r.n_heads for r in records) == 1


def test_midstream_admission_keeps_arrival_order_resolution():
    """Interleaved submissions across rounds resolve each future to exactly
    its own request's sequential result - no cross-wiring in mixed groups."""
    engine = SofaEngine(CFG, max_batch_heads=3, max_wait_batches=1)
    rng = make_rng(10)
    submitted = []
    for wave in range(3):
        for _ in range(2):
            req = _request(rng, s=64 if (len(submitted) % 2) else 96)
            submitted.append((req, engine.submit(req)))
        engine.step()
    engine.run_until_drained()
    for req, fut in submitted:
        seq = SofaAttention(req.wk, req.wv, CFG)(req.tokens, req.q)
        res = fut.result()
        np.testing.assert_array_equal(seq.selected, res.selected)
        assert seq.output.tobytes() == res.output.tobytes()


def test_result_still_triggers_full_drain():
    engine = SofaEngine(CFG, max_batch_heads=8)
    rng = make_rng(11)
    fut = engine.submit(_request(rng))
    res = fut.result()  # implicit drain of an under-full group
    assert res.output.shape == (4, 16)
    assert engine.pending == 0


def test_waited_rounds_zero_for_immediately_full_group():
    engine = SofaEngine(CFG, max_batch_heads=2)
    rng = make_rng(12)
    engine.submit_many([_request(rng), _request(rng)])
    records = engine.step()
    assert records[0].waited_rounds == 0


def test_invalid_max_wait_batches_rejected():
    with pytest.raises(ValueError):
        SofaEngine(CFG, max_wait_batches=-1)


def test_malformed_deadline_and_cache_key_fail_at_submit():
    """submit()'s contract: malformed requests never poison a batch (or
    spin the drain loop) - they are rejected before admission."""
    engine = SofaEngine(CFG)
    rng = make_rng(15)
    with pytest.raises(ValueError):
        engine.submit(_request(rng, deadline="soon"))
    with pytest.raises(ValueError):
        engine.submit(_request(rng, cache_key=["not", "hashable"]))
    assert engine.pending == 0


def test_straggler_drain_uses_constant_rounds():
    """Blocked-caller drains fast-forward aging: a lonely group must not
    cost max_wait_batches no-op scheduling rounds."""
    engine = SofaEngine(CFG, max_batch_heads=8, max_wait_batches=500)
    engine.submit(_request(make_rng(16)))
    records = engine.run_until_drained()
    assert sum(r.n_heads for r in records) == 1
    assert engine.stats.n_steps <= 3
    assert records[0].waited_rounds == 500  # the bound is still the record


def test_mismatched_wv_widths_never_share_a_group():
    """Same value-cache width but different wv shapes must split: the wv
    projections stack in _execute even when a cache overrides Dv."""
    engine = SofaEngine(CFG)
    rng = make_rng(13)

    def req(wv_cols):
        return AttentionRequest(
            tokens=rng.integers(-80, 80, size=(64, 16)).astype(np.float64),
            q=rng.normal(size=(4, 16)),
            wk=rng.normal(size=(16, 16)),
            wv=rng.normal(size=(16, wv_cols)),
            v=rng.normal(size=(64, 8)),
        )

    results = engine.run([req(8), req(12)])
    assert engine.stats.n_batches == 2
    assert all(r.output.shape == (4, 8) for r in results)  # Dv from the cache


def test_run_until_drained_survives_failing_batch():
    """A batch that raises mid-drain must not strand other groups: the
    drain completes, every future resolves, and the error re-raises last."""
    from repro.core.config import SufaConfig

    bad_cfg = SofaConfig(
        tile_cols=16, top_k=12, sufa=SufaConfig(max_assurance=False)
    )
    engine = SofaEngine(CFG, max_batch_heads=8, max_wait_batches=1)
    good = engine.submit(_request(make_rng(0)))  # under-full, not yet ready
    doomed = engine.submit(
        _request(make_rng(1), config=bad_cfg, deadline=0.0)  # fails round 0
    )
    with pytest.raises(RuntimeError):
        engine.run_until_drained()
    assert engine.pending == 0
    assert good.done() and doomed.done()
    assert good.result().output.shape == (4, 16)
    with pytest.raises(RuntimeError):
        doomed.result()
    # run() shares the drain: the same scenario through run() also resolves
    # every future before the error propagates
    engine2 = SofaEngine(CFG, max_batch_heads=8, max_wait_batches=1)
    f_good = engine2.submit(_request(make_rng(0)))
    engine2.submit(_request(make_rng(1), config=bad_cfg, deadline=0.0))
    with pytest.raises(RuntimeError):
        engine2.run([])
    assert f_good.done() and engine2.pending == 0


def test_step_failure_still_ages_waiting_groups():
    """A neighbour batch raising must not freeze the starvation bound."""
    from repro.core.config import SufaConfig

    bad_cfg = SofaConfig(
        tile_cols=16, top_k=12, sufa=SufaConfig(max_assurance=False)
    )
    engine = SofaEngine(CFG, max_batch_heads=8, max_wait_batches=2)
    waiting = engine.submit(_request(make_rng(14)))
    for round_no in range(2):
        # each round, a doomed request (seed 1 violates the predicted
        # ordering under max_assurance=False) expires immediately
        engine.submit(
            _request(make_rng(1), config=bad_cfg, deadline=0.0)
        )
        with pytest.raises(RuntimeError):
            engine.step()
        assert engine.stats.n_steps == round_no + 1
    # the waiting group aged through both failing rounds -> ready now
    records = engine.step()
    assert [r.n_heads for r in records] == [1]
    assert waiting.done()
