"""Executor-backend tests: the threads path must be a pure wall-clock knob.

``backend="threads"`` dispatches independent chunks onto a thread pool; the
batch-invariant numerics guarantee that scheduling cannot move a single bit,
so these tests compare everything - outputs, selections, op counts, stage
traces, statistics ordering, and error routing - against the sync backend
and the sequential per-head operator.
"""

import numpy as np
import pytest

from repro.core.config import SadsConfig, SofaConfig, SufaConfig
from repro.core.pipeline import SofaAttention
from repro.engine import AttentionRequest, SofaEngine
from repro.engine.executor import SyncExecutor, ThreadedExecutor, make_executor
from repro.utils.rng import make_rng


def _request(rng, s=64, h=16, d=16, t=4, config=None):
    return AttentionRequest(
        tokens=rng.integers(-80, 80, size=(s, h)).astype(np.float64),
        q=rng.normal(size=(t, d)),
        wk=rng.normal(size=(h, d)),
        wv=rng.normal(size=(h, d)),
        config=config,
    )


def test_make_executor_names_and_validation():
    assert make_executor("sync").name == "sync"
    assert make_executor("threads", max_workers=2).name == "threads"
    with pytest.raises(ValueError):
        make_executor("fibers")
    with pytest.raises(ValueError):
        make_executor("threads", max_workers=0)


def test_sync_executor_preserves_order_and_errors():
    backend = SyncExecutor()
    outcomes = backend.run([lambda: 1, lambda: (_ for _ in ()).throw(RuntimeError("x")), lambda: 3])
    assert outcomes[0] == 1 and outcomes[2] == 3
    assert isinstance(outcomes[1], RuntimeError)


def test_threaded_executor_gathers_in_dispatch_order():
    backend = ThreadedExecutor(max_workers=4)
    try:
        outcomes = backend.run([(lambda i=i: i * i) for i in range(16)])
        assert outcomes == [i * i for i in range(16)]
        bad = backend.run([lambda: 7, lambda: (_ for _ in ()).throw(ValueError("boom"))])
        assert bad[0] == 7 and isinstance(bad[1], ValueError)
    finally:
        backend.shutdown()


@pytest.mark.parametrize("seed", range(6))
def test_threads_backend_bit_identical_to_sequential(seed):
    """Randomized sweep: threads-served == per-head SofaAttention, exactly."""
    rng = make_rng(4000 + seed)
    s = int(rng.integers(32, 160))
    cfg = SofaConfig(
        tile_cols=int(rng.choice([8, 16, 32])),
        top_k=int(rng.integers(1, s + 1)),
        sads=SadsConfig(
            n_segments=int(rng.integers(1, 6)),
            radius=float(rng.uniform(1.0, 6.0)),
            adjust_rounds=int(rng.integers(0, 3)),
        ),
    )
    requests = [_request(rng, s=s) for _ in range(int(rng.integers(2, 9)))]
    with SofaEngine(cfg, max_batch_heads=3, backend="threads", max_workers=4) as engine:
        results = engine.run(requests)
    for req, res in zip(requests, results):
        seq = SofaAttention(req.wk, req.wv, cfg)(req.tokens, req.q)
        np.testing.assert_array_equal(seq.selected, res.selected)
        assert seq.output.tobytes() == res.output.tobytes()
        assert seq.assurance_triggers == res.assurance_triggers
        for st_s, st_b in zip(seq.stages, res.stages):
            assert st_s.dram_bytes == st_b.dram_bytes
            assert st_s.sram_peak_bytes == st_b.sram_peak_bytes
            for op in set(st_s.ops.counts) | set(st_b.ops.counts):
                assert st_s.ops[op] == st_b.ops[op], (st_s.name, op)


def test_threads_and_sync_record_identical_batch_stats():
    """Dispatch-order gathering keeps statistics deterministic per backend."""
    rng_a, rng_b = make_rng(50), make_rng(50)
    shapes = [64, 96, 64, 128, 96, 64, 128, 64]
    records = {}
    for backend, rng in (("sync", rng_a), ("threads", rng_b)):
        with SofaEngine(
            SofaConfig(tile_cols=16, top_k=8), max_batch_heads=2, backend=backend
        ) as engine:
            engine.run([_request(rng, s=s) for s in shapes])
            records[backend] = [
                (r.n_heads, r.seq_len, r.tile_cols) for r in engine.stats.batches
            ]
            assert engine.stats.n_requests == len(shapes)
    assert records["sync"] == records["threads"]


def test_threads_error_isolation_matches_sync():
    """A failing chunk resolves only its own futures with the error."""
    cfg = SofaConfig(tile_cols=16, top_k=12, sufa=SufaConfig(max_assurance=False))
    for backend in ("sync", "threads"):
        with SofaEngine(cfg, backend=backend) as engine:
            fut_good = engine.submit(_request(make_rng(0)))
            fut_bad = engine.submit(_request(make_rng(1)))  # ordering violated
            with pytest.raises(RuntimeError):
                engine.flush()
            assert fut_good.done() and fut_bad.done()
            assert fut_good.result().output.shape == (4, 16)
            with pytest.raises(RuntimeError):
                fut_bad.result()
            assert engine.stats.n_requests == 1, backend


def test_engine_backend_property_and_shutdown_idempotent():
    engine = SofaEngine(SofaConfig(tile_cols=16, top_k=8), backend="threads")
    assert engine.backend == "threads"
    engine.run([_request(make_rng(2))])
    engine.shutdown()
    engine.shutdown()  # second shutdown is a no-op
    # the pool is rebuilt lazily after shutdown
    assert engine.run([_request(make_rng(3))])[0].output.shape == (4, 16)
    engine.shutdown()


def test_unknown_backend_rejected_at_construction():
    with pytest.raises(ValueError):
        SofaEngine(SofaConfig(tile_cols=16, top_k=8), backend="gpu")
