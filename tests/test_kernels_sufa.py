"""Differential tests: every SU-FA kernel is bit-for-bit interchangeable.

The kernel registry's contract (``repro.kernels``) is that the blocked
kernel reproduces the reference per-key loop exactly - output bits,
Max-Ensuring trigger counts, and per-row op tallies - on any input.  The
sweep here drives both kernels over randomized and adversarial workloads:
orderings that force violations in the first/middle/last block, selections
shorter than the warmup scan, block-width remainders, and one-row stacks.
"""

import numpy as np
import pytest

from repro.core.config import SofaConfig, SufaConfig
from repro.core.pipeline import SofaAttention
from repro.core.sufa import (
    UpdateOrder,
    sorted_updating_attention,
    stream_selected,
    stream_selected_reference,
)
from repro.engine import AttentionRequest, BatchedSofaAttention, SofaEngine
from repro.kernels import (
    DEFAULT_SUFA_KERNEL,
    KERNEL_ENV_VAR,
    available_sufa_kernels,
    get_sufa_kernel,
    register_sufa_kernel,
    resolve_sufa_kernel_name,
    stream_selected_blocked,
)
from repro.utils.rng import make_rng

ORDERS = (UpdateOrder.DESCENDING, UpdateOrder.ASCENDING)


def _gathered(rng, r, kk, d, dv, ordering="sorted"):
    """A pre-gathered (q, k_sel, v_sel) stack in the SADS output convention.

    ``ordering`` shapes where Max-Ensuring violations occur:

    - ``sorted``: exact descending scores - no violations;
    - ``reversed``: ascending scores fed as descending - violations on
      nearly every key;
    - ``shuffled``: random order - violations scattered through all blocks;
    - ``first_block`` / ``middle_block`` / ``last_block``: exact order with
      the true maximum displaced into that block, forcing a violation
      exactly there.
    """
    q = rng.normal(size=(r, d))
    k = rng.normal(size=(r, kk, d))
    v = rng.normal(size=(r, kk, dv))
    scores = (k * q[:, None, :]).sum(-1)
    idx = np.argsort(-scores, axis=1)
    if ordering == "reversed":
        idx = idx[:, ::-1]
    elif ordering == "shuffled":
        idx = idx[:, rng.permutation(kk)]
    elif ordering in ("first_block", "middle_block", "last_block"):
        pos = {"first_block": min(5, kk - 1), "middle_block": kk // 2,
               "last_block": kk - 1}[ordering]
        idx = idx.copy()
        idx[:, [0, pos]] = idx[:, [pos, 0]]
    k = np.take_along_axis(k, idx[:, :, None], axis=1)
    v = np.take_along_axis(v, idx[:, :, None], axis=1)
    return q, k, v


def _assert_kernels_agree(q, k, v, order, tile_cols, expect_triggers=None):
    ref = stream_selected_reference(q, k, v, order=order, tile_cols=tile_cols)
    blk = stream_selected_blocked(q, k, v, order=order, tile_cols=tile_cols)
    assert ref.output.tobytes() == blk.output.tobytes()
    assert np.array_equal(ref.trigger_rows, blk.trigger_rows)
    assert set(ref.op_rows) == set(blk.op_rows)
    for op in ref.op_rows:
        assert np.array_equal(ref.op_rows[op], blk.op_rows[op]), op
    if expect_triggers is not None:
        assert (int(ref.trigger_rows.sum()) > 0) == expect_triggers
    return ref


@pytest.mark.parametrize("order", ORDERS)
@pytest.mark.parametrize(
    "ordering", ["sorted", "reversed", "shuffled", "first_block", "middle_block", "last_block"]
)
def test_differential_sweep_bit_exact(order, ordering):
    """Randomized shapes x adversarial orderings: exact kernel agreement."""
    rng = make_rng(hash((order.value, ordering)) % 2**31)
    for r, kk, d, dv, tc in [
        (3, 130, 8, 6, 64),   # block remainder (130 = 2*64 + 2)
        (16, 64, 16, 16, 16),
        (2, 257, 8, 4, 32),   # prime-ish kk, many tails
        (9, 48, 4, 2, 5),     # tiny tiles, tiny value dim
        (5, 96, 8, 1, 64),    # single-lane values
    ]:
        q, k, v = _gathered(rng, r, kk, d, dv, ordering)
        # sorted order only violates when fed as 'descending' data but
        # processed ascending (the reversal makes every key a new max)
        expect = None
        if ordering in ("first_block", "middle_block", "last_block"):
            expect = order is UpdateOrder.DESCENDING or None
        _assert_kernels_agree(q, k, v, order, tc, expect_triggers=expect)


@pytest.mark.parametrize("order", ORDERS)
def test_short_selections_and_single_rows(order):
    """kk below the warmup scan, kk == 1, and one-row stacks."""
    rng = make_rng(77)
    for r, kk in [(1, 1), (1, 3), (4, 2), (1, 17), (6, 1)]:
        for ordering in ("sorted", "shuffled"):
            q, k, v = _gathered(rng, r, kk, 8, 5, ordering)
            _assert_kernels_agree(q, k, v, order, tile_cols=4)


def test_single_row_matches_stack_rows():
    """A row streamed alone is bit-identical to the same row in a stack."""
    rng = make_rng(91)
    q, k, v = _gathered(rng, 12, 96, 8, 8, "shuffled")
    whole = stream_selected_blocked(q, k, v, tile_cols=32)
    for row in (0, 5, 11):
        alone = stream_selected_blocked(
            q[row : row + 1], k[row : row + 1], v[row : row + 1], tile_cols=32
        )
        assert alone.output.tobytes() == whole.output[row : row + 1].tobytes()
        assert alone.trigger_rows[0] == whole.trigger_rows[row]


@pytest.mark.parametrize("kernel", ["blocked", "reference"])
def test_assurance_disabled_raises_in_every_kernel(kernel):
    rng = make_rng(13)
    q, k, v = _gathered(rng, 4, 64, 8, 4, "reversed")
    with pytest.raises(RuntimeError, match="max assurance"):
        stream_selected(q, k, v, max_assurance=False, kernel=kernel)


def test_tile_cols_only_moves_work_not_triggers():
    """Block width changes sync op counts, never triggers or selections."""
    rng = make_rng(29)
    q, k, v = _gathered(rng, 6, 120, 8, 6, "shuffled")
    a = stream_selected_blocked(q, k, v, tile_cols=8)
    b = stream_selected_blocked(q, k, v, tile_cols=64)
    assert np.array_equal(a.trigger_rows, b.trigger_rows)
    assert np.array_equal(a.op_rows["exp"], b.op_rows["exp"])
    assert a.op_rows["compare"].sum() > b.op_rows["compare"].sum()
    np.testing.assert_allclose(a.output, b.output, atol=1e-12)


# ---------------------------------------------------------------- registry
def test_registry_lists_builtin_kernels():
    names = available_sufa_kernels()
    assert "blocked" in names and "reference" in names
    assert get_sufa_kernel("reference") is stream_selected_reference
    assert get_sufa_kernel("blocked") is stream_selected_blocked


def test_registry_resolution_precedence(monkeypatch):
    # Neutralize every stage override so the test is deterministic under the
    # CI kernel-matrix job, which drives these env vars through their grid.
    for stage in ("predict", "select", "stream"):
        from repro.kernels import kernel_env_var

        monkeypatch.delenv(kernel_env_var(stage), raising=False)
    assert resolve_sufa_kernel_name(None) == DEFAULT_SUFA_KERNEL
    assert resolve_sufa_kernel_name("auto") == DEFAULT_SUFA_KERNEL
    monkeypatch.setenv(KERNEL_ENV_VAR, "reference")
    assert resolve_sufa_kernel_name(None) == "reference"
    # explicit name outranks the environment
    assert resolve_sufa_kernel_name("blocked") == "blocked"


def test_registry_rejects_unknown_and_reserved_names():
    with pytest.raises(ValueError, match="unknown SU-FA kernel"):
        get_sufa_kernel("no-such-kernel")
    with pytest.raises(ValueError, match="reserved"):
        register_sufa_kernel("auto", stream_selected_blocked)
    with pytest.raises(ValueError, match="already registered"):
        register_sufa_kernel("blocked", stream_selected_reference)


def test_register_custom_kernel(monkeypatch):
    calls = []

    def probe(q_rows, k_sel, v_sel, **kwargs):
        calls.append(kwargs)
        return stream_selected_reference(q_rows, k_sel, v_sel, **kwargs)

    register_sufa_kernel("probe-kernel", probe, overwrite=True)
    try:
        rng = make_rng(3)
        q, k, v = _gathered(rng, 2, 16, 4, 4)
        res = stream_selected(q, k, v, kernel="probe-kernel")
        assert calls and res.output.shape == (2, 4)
        monkeypatch.setenv(KERNEL_ENV_VAR, "probe-kernel")
        stream_selected(q, k, v)
        assert len(calls) == 2
    finally:
        from repro.kernels.registry import _REGISTRIES

        _REGISTRIES["stream"].pop("probe-kernel", None)


# ------------------------------------------------------- config threading
def test_sorted_updating_attention_kernel_parity():
    rng = make_rng(41)
    q = rng.normal(size=(6, 16))
    kmat = rng.normal(size=(64, 16))
    v = rng.normal(size=(64, 16))
    sel = np.argsort(-(q @ kmat.T), axis=1)[:, :12]
    a = sorted_updating_attention(q, kmat, v, sel, kernel="blocked")
    b = sorted_updating_attention(q, kmat, v, sel, kernel="reference")
    assert a.output.tobytes() == b.output.tobytes()
    assert a.assurance_triggers == b.assurance_triggers
    assert a.ops.counts == b.ops.counts


@pytest.mark.parametrize("kernel", ["blocked", "reference"])
def test_per_head_and_batched_share_kernel_bits(kernel):
    """Config-selected kernel: per-head vs batched stays bit-for-bit."""
    rng = make_rng(59)
    n, s, h, dk = 3, 48, 16, 8
    cfg = SofaConfig(tile_cols=16, top_k=0.25, sufa=SufaConfig(kernel=kernel))
    wk = rng.normal(size=(n, h, dk))
    wv = rng.normal(size=(n, h, dk))
    tokens = rng.integers(-50, 50, size=(n, s, h)).astype(np.float64)
    q = rng.normal(size=(n, 4, dk))
    batched = BatchedSofaAttention(wk, wv, cfg)(tokens, q)
    for i in range(n):
        single = SofaAttention(wk[i], wv[i], cfg)(tokens[i], q[i])
        assert single.output.tobytes() == batched.per_head[i].output.tobytes()
        assert np.array_equal(single.selected, batched.per_head[i].selected)
        assert single.total_ops.counts == batched.per_head[i].total_ops.counts


def test_kernel_choice_does_not_change_results():
    """The registry knob moves wall-clock only: blocked == reference bits
    through the full per-head pipeline."""
    rng = make_rng(67)
    s, h, dk = 64, 16, 8
    wk = rng.normal(size=(h, dk))
    wv = rng.normal(size=(h, dk))
    tokens = rng.integers(-50, 50, size=(s, h)).astype(np.float64)
    q = rng.normal(size=(5, dk))
    results = {}
    for kernel in ("blocked", "reference"):
        cfg = SofaConfig(tile_cols=16, top_k=0.2, sufa=SufaConfig(kernel=kernel))
        results[kernel] = SofaAttention(wk, wv, cfg)(tokens, q)
    a, b = results["blocked"], results["reference"]
    assert a.output.tobytes() == b.output.tobytes()
    assert np.array_equal(a.selected, b.selected)
    assert a.total_ops.counts == b.total_ops.counts
    assert a.assurance_triggers == b.assurance_triggers


# ------------------------------------------------------------ engine tier
def _engine_requests(rng, n=6, s=48, h=16, dk=8):
    return [
        AttentionRequest(
            tokens=rng.integers(-50, 50, size=(s, h)).astype(np.float64),
            q=rng.normal(size=(4, dk)),
            wk=rng.normal(size=(h, dk)),
            wv=rng.normal(size=(h, dk)),
        )
        for _ in range(n)
    ]


def test_engine_kernel_parity_and_validation():
    rng = make_rng(83)
    requests = _engine_requests(rng)
    with SofaEngine(max_batch_heads=4, kernel="blocked") as fast:
        fast_results = fast.run(requests)
    with SofaEngine(max_batch_heads=4, kernel="reference") as slow:
        slow_results = slow.run(requests)
    for a, b in zip(fast_results, slow_results):
        assert a.output.tobytes() == b.output.tobytes()
        assert np.array_equal(a.selected, b.selected)
        assert a.total_ops.counts == b.total_ops.counts
    with pytest.raises(ValueError, match="unknown SU-FA kernel"):
        SofaEngine(kernel="typo")


# ----------------------------------------------------------- cluster tier
@pytest.mark.cluster
def test_cluster_workers_share_the_kernel_registry():
    """A cluster pinned to either kernel serves bit-identically to an
    in-process engine: the registry threads through the worker processes."""
    from repro.cluster import EngineCluster

    rng = make_rng(97)
    requests = _engine_requests(rng, n=8)
    with SofaEngine(max_batch_heads=4) as engine:
        ref = engine.run(requests)
    for kernel in ("blocked", "reference"):
        with EngineCluster(n_workers=2, kernel=kernel, max_batch_heads=4) as cluster:
            got = cluster.run(requests)
        for a, b in zip(ref, got):
            assert a.output.tobytes() == b.output.tobytes()
            assert np.array_equal(a.selected, b.selected)
            assert a.total_ops.counts == b.total_ops.counts
    with pytest.raises(ValueError, match="unknown SU-FA kernel"):
        EngineCluster(n_workers=1, kernel="typo")
