"""Differential tests: the fused predict+select kernel is bit-exact.

The fused kernel (``repro.kernels.predict_select_fused``) must reproduce
the reference ``DlzsPredictor.predict`` -> ``SadsSorter.select_stack``
pipeline bit for bit - selections, ordering, comparator/clip tallies, op
counters, stage traces - while never materializing the full score matrix
(asserted through the kernel's peak-intermediate-size probe).  The sweep
here drives sorted/shuffled/heavy-tie/adversarial score layouts, tile
remainders, selections shorter than the SU-FA warmup scan, one-row
stacks, select-all and single-survivor edge cases, every
fused/reference stage combination, and the cached-decode interaction
with the paged store - across the per-head, batched, threads and engine
tiers.  The cluster/socket tests cover env-var kernel selection
propagating across the process boundary (satellite: worker engines must
resolve - and report - the same per-stage kernels as the frontend).
"""

import numpy as np
import pytest

from repro.core.config import DlzsConfig, SadsConfig, SofaConfig
from repro.core.dlzs import DlzsPredictor, StackedDlzsPredictor
from repro.core.pipeline import SofaAttention
from repro.core.sads import SadsSorter
from repro.engine import AttentionRequest, BatchedSofaAttention, SofaEngine
from repro.kernels import (
    FUSED,
    available_kernels,
    fused_pair,
    get_kernel,
    kernel_env_var,
    register_kernel,
    resolve_kernel_name,
)
from repro.utils.rng import make_rng


def _assert_stack_equal(ref, got):
    assert np.array_equal(ref.indices, got.indices)
    assert np.array_equal(ref.compare_rows, got.compare_rows)
    assert np.array_equal(ref.clipped_rows, got.clipped_rows)


def _assert_results_equal(a, b):
    assert a.output.tobytes() == b.output.tobytes()
    assert np.array_equal(a.selected, b.selected)
    assert a.total_ops.counts == b.total_ops.counts
    for sa, sb in zip(a.stages, b.stages):
        assert sa.name == sb.name
        assert sa.ops.counts == sb.ops.counts
        assert sa.dram_bytes == sb.dram_bytes
        assert sa.sram_peak_bytes == sb.sram_peak_bytes
    assert a.assurance_triggers == b.assurance_triggers


def _layout(rng, kind, r, s):
    if kind == "sorted":
        return np.sort(rng.normal(size=(r, s)), axis=1)[:, ::-1].copy()
    if kind == "ties":
        return rng.integers(-3, 4, size=(r, s)).astype(np.float64)
    if kind == "constant":  # every value ties: pure index tie-breaking
        return np.tile((np.arange(s, dtype=np.float64) % 5), (r, 1))
    return rng.normal(size=(r, s))


# ----------------------------------------------------- streamed selection
@pytest.mark.parametrize("kind", ["random", "sorted", "ties", "constant"])
def test_streamed_select_matches_reference_sweep(kind):
    """select_stack_streamed == select_stack over layouts x shapes x rounds."""
    rng = make_rng(hash(kind) % 2**31)
    for _ in range(40):
        r = int(rng.integers(1, 7))
        s = int(rng.integers(2, 130))
        k = int(rng.integers(1, s + 1))
        cfg = SadsConfig(
            n_segments=int(rng.integers(1, 9)),
            radius=float(rng.uniform(0.5, 8.0)),
            adjust_rounds=int(rng.integers(0, 6)),
        )
        sorter = SadsSorter(cfg)
        scores = _layout(rng, kind, r, s)
        ref = sorter.select_stack(scores, k)
        got = sorter.select_stack_streamed(
            lambda seg, lo, hi: scores[:, lo:hi], r, s, k
        )
        _assert_stack_equal(ref, got)


def test_streamed_select_edge_cases():
    """Select-all, single excluded candidate, k=1, one-row, huge rounds."""
    rng = make_rng(7)
    for s, k, rounds, segs in [
        (16, 16, 3, 4),   # k == s: no excluded pool at all
        (17, 16, 5, 4),   # exactly one excluded candidate
        (33, 1, 2, 4),    # k=1: argmin over a single selected value
        (9, 4, 50, 3),    # rounds far beyond the excluded population
        (5, 3, 2, 8),     # more segments than k: n collapses to k
        (2, 1, 1, 1),     # minimal everything
    ]:
        cfg = SadsConfig(n_segments=segs, adjust_rounds=rounds)
        sorter = SadsSorter(cfg)
        for r in (1, 4):
            scores = _layout(rng, "ties", r, s)
            ref = sorter.select_stack(scores, k)
            got = sorter.select_stack_streamed(
                lambda seg, lo, hi: scores[:, lo:hi], r, s, k
            )
            _assert_stack_equal(ref, got)


# ------------------------------------------------------------ fused kernel
def test_fused_single_head_bit_identical_and_never_full():
    """FUSED.run_single == predict -> select_stack, with only tile peaks."""
    rng = make_rng(21)
    for s, t, tile_cols in [(130, 3, 64), (64, 5, 16), (257, 2, 32), (48, 1, 5)]:
        cfg = SofaConfig(tile_cols=tile_cols)
        wk = rng.normal(size=(8, 8))
        predictor = DlzsPredictor(wk, cfg.dlzs)
        tokens = rng.integers(-50, 50, size=(s, 8)).astype(np.float64)
        q = rng.normal(size=(t, 8))
        sorter = SadsSorter(cfg.sads_for(cfg.n_tiles(s)))
        for k in (1, 2, s // 4 or 1, s):  # includes k < the SU-FA warmup scan
            full = predictor.predict(tokens, q)
            ref = sorter.select_stack(full.a_hat, k)
            prep, got = FUSED.run_single(predictor, sorter, tokens, q, k)
            _assert_stack_equal(ref, got)
            assert prep.ops.counts == full.ops.counts
            probe = FUSED.last_probe
            assert probe.exact_blas
            assert probe.full_matrix_elems == t * s
            n_seg = min(sorter.config.n_segments, k, s)
            if n_seg > 1:
                # The acceptance probe: peak intermediate is one tile, not
                # the full score matrix the unfused pipeline materializes.
                assert probe.peak_tile_elems < probe.full_matrix_elems
            assert probe.peak_tile_elems <= t * (-(-s // n_seg) + 1)


def test_fused_stacked_bit_identical():
    rng = make_rng(22)
    for n, s, t in [(1, 64, 4), (3, 130, 2), (4, 31, 1)]:
        cfg = SofaConfig(tile_cols=16)
        wk = rng.normal(size=(n, 8, 8))
        predictor = StackedDlzsPredictor(wk, cfg.dlzs)
        tokens = rng.integers(-50, 50, size=(n, s, 8)).astype(np.float64)
        q = rng.normal(size=(n, t, 8))
        sorter = SadsSorter(cfg.sads_for(cfg.n_tiles(s)))
        for k in (1, max(s // 5, 1), s):
            full = predictor.predict(tokens, q)
            ref = sorter.select_stack(full.a_hat.reshape(n * t, s), k)
            prep, got = FUSED.run_stacked(predictor, sorter, tokens, q, k)
            _assert_stack_equal(ref, got)
            for i in range(n):
                assert prep.head_ops[i].counts == full.head_ops[i].counts


def test_fused_int64_fallback_stays_exact():
    """Operands overflowing the float64 window fall back to int64 tiles.

    No in-tree config can overflow (the LZE caps widths at 16 bits), so a
    stub predictor hands the fused kernel prepared state with 40-bit
    operands, where float64 BLAS would actually round.
    """
    from repro.core.dlzs import PreparedPrediction
    from repro.kernels.predict_select_fused import _blas_exact
    from repro.numerics.complexity import OpCounter

    rng = make_rng(23)
    t, s, d = 3, 40, 8
    pow2 = (2 ** rng.integers(30, 40, size=(t, d))) * rng.choice([-1, 1], (t, d))
    k_hat = rng.integers(-(2**39), 2**39, size=(s, d))
    assert not _blas_exact(pow2, k_hat)
    prep = PreparedPrediction(
        k_hat=k_hat, pow2=pow2, scale=0.125, ops=OpCounter()
    )

    class _StubPredictor:
        def predict_prepared(self, tokens, q):
            return prep

    a_hat = (pow2 @ k_hat.T).astype(np.float64) * prep.scale
    sorter = SadsSorter(SadsConfig(n_segments=4))
    ref = sorter.select_stack(a_hat, 10)
    _, got = FUSED.run_single(_StubPredictor(), sorter, None, None, 10)
    _assert_stack_equal(ref, got)
    assert not FUSED.last_probe.exact_blas


# -------------------------------------------------- pipeline/engine tiers
def _head_problem(rng, s=48, h=16, dk=8, t=4):
    return (
        rng.integers(-50, 50, size=(s, h)).astype(np.float64),
        rng.normal(size=(t, dk)),
        rng.normal(size=(h, dk)),
        rng.normal(size=(h, dk)),
    )


@pytest.mark.parametrize("predict", ["reference", "fused"])
@pytest.mark.parametrize("select", ["reference", "fused"])
def test_pipeline_parity_across_kernel_combos(predict, select):
    """Every predict x select combination is bit-identical end to end -
    including the mixed ones, where each fused wrapper must degrade to its
    stage's reference behaviour."""
    rng = make_rng(31)
    tokens, q, wk, wv = _head_problem(rng)
    base_cfg = SofaConfig(tile_cols=16, top_k=0.25)
    ref = SofaAttention(wk, wv, base_cfg)(tokens, q)
    cfg = SofaConfig(
        tile_cols=16,
        top_k=0.25,
        dlzs=DlzsConfig(kernel=predict),
        sads=SadsConfig(kernel=select),
    )
    got = SofaAttention(wk, wv, cfg)(tokens, q)
    _assert_results_equal(ref, got)


def test_fused_pair_detection():
    pk, sk = get_kernel("predict", "fused"), get_kernel("select", "fused")
    assert fused_pair(pk, sk) is FUSED
    assert fused_pair(get_kernel("predict", "reference"), sk) is None
    assert fused_pair(pk, get_kernel("select", "reference")) is None


def test_batched_vs_per_head_fused_bits():
    rng = make_rng(37)
    n, s, h, dk = 3, 130, 16, 8  # tile remainder: 130 over 16-wide tiles
    cfg = SofaConfig(
        tile_cols=16,
        top_k=0.2,
        dlzs=DlzsConfig(kernel="fused"),
        sads=SadsConfig(kernel="fused"),
    )
    wk = rng.normal(size=(n, h, dk))
    wv = rng.normal(size=(n, h, dk))
    tokens = rng.integers(-50, 50, size=(n, s, h)).astype(np.float64)
    q = rng.normal(size=(n, 4, dk))
    batched = BatchedSofaAttention(wk, wv, cfg)(tokens, q)
    probe = FUSED.last_probe
    assert probe.rows == n * 4 and probe.row_len == s
    assert probe.peak_tile_elems < probe.full_matrix_elems
    for i in range(n):
        single = SofaAttention(wk[i], wv[i], cfg)(tokens[i], q[i])
        _assert_results_equal(single, batched.per_head[i])


def _engine_requests(rng, n=8, cache_keys=False):
    out = []
    for i in range(n):
        tokens, q, wk, wv = _head_problem(rng, s=(48 if i % 2 else 32))
        out.append(
            AttentionRequest(
                tokens=tokens, q=q, wk=wk, wv=wv,
                cache_key=f"seq-{i}" if cache_keys else None,
            )
        )
    return out


@pytest.mark.parametrize("backend", ["sync", "threads"])
def test_engine_fused_mapping_parity(backend):
    rng = make_rng(41)
    requests = _engine_requests(rng)
    with SofaEngine(max_batch_heads=4, backend=backend) as ref_engine:
        ref = ref_engine.run(requests)
    fused_sel = {"predict": "fused", "select": "fused"}
    with SofaEngine(max_batch_heads=4, backend=backend, kernel=fused_sel) as engine:
        assert engine.resolved_kernels()["predict"] == "fused"
        assert engine.resolved_kernels()["select"] == "fused"
        got = engine.run(requests)
    for a, b in zip(ref, got):
        _assert_results_equal(a, b)


def test_engine_cached_decode_fused_parity():
    """Growing sequences through the paged decode cache: the fused kernel
    consumes the cached phase-1.1 state (predict_prepared) yet stays
    bit-identical to the unfused cached and uncached paths."""
    rng = make_rng(43)
    h, dk = 16, 8
    wk, wv = rng.normal(size=(h, dk)), rng.normal(size=(h, dk))
    base = rng.integers(-50, 50, size=(64, h)).astype(np.float64)
    fused_sel = {"predict": "fused", "select": "fused"}
    engines = {
        "plain": SofaEngine(max_batch_heads=4),
        "fused": SofaEngine(max_batch_heads=4, kernel=fused_sel),
    }
    try:
        for step_len in (24, 32, 48, 64):  # growing prefix, same cache key
            results = {}
            for name, engine in engines.items():
                req = AttentionRequest(
                    tokens=base[:step_len],
                    q=rng.normal(size=(3, dk)) * 0 + 1.0,  # deterministic q
                    wk=wk,
                    wv=wv,
                    cache_key="session-0",
                )
                results[name] = engine.run([req])[0]
            _assert_results_equal(results["plain"], results["fused"])
        stats = {name: e.stats.cache for name, e in engines.items()}
        assert stats["fused"].hits == stats["plain"].hits
        assert stats["fused"].hits > 0
    finally:
        for engine in engines.values():
            engine.shutdown()


# ----------------------------------------------------- registry semantics
def test_per_stage_registry_lists_and_defaults():
    assert "fused" in available_kernels("predict")
    assert "fused" in available_kernels("select")
    assert "blocked" in available_kernels("stream")
    assert resolve_kernel_name("predict") in available_kernels("predict")


def test_registry_error_names_stage_source_and_candidates(monkeypatch):
    for stage in ("predict", "select", "stream"):
        monkeypatch.delenv(kernel_env_var(stage), raising=False)
    with pytest.raises(ValueError) as err:
        resolve_kernel_name("predict", "typo")
    msg = str(err.value)
    assert "predict kernel 'typo'" in msg
    assert "explicit kernel argument" in msg
    assert "'fused'" in msg and "'reference'" in msg
    # env-sourced bad name: the message must finger the variable
    monkeypatch.setenv(kernel_env_var("select"), "typo-from-env")
    with pytest.raises(ValueError) as err:
        resolve_kernel_name("select", None)
    msg = str(err.value)
    assert "environment variable SOFA_SELECT_KERNEL" in msg
    assert "typo-from-env" in msg
    with pytest.raises(ValueError, match="unknown kernel stage"):
        resolve_kernel_name("bogus-stage", "reference")


def test_engine_rejects_unknown_stage_and_name():
    with pytest.raises(ValueError, match="unknown kernel stages"):
        SofaEngine(kernel={"bogus": "reference"})
    with pytest.raises(ValueError, match="unknown predict kernel"):
        SofaEngine(kernel={"predict": "typo"})
    # bare strings keep the PR-4 stream-stage meaning and error wording
    with pytest.raises(ValueError, match="unknown SU-FA kernel"):
        SofaEngine(kernel="typo")


def test_register_kernel_guards_per_stage():
    ref = get_kernel("predict", "reference")
    with pytest.raises(ValueError, match="reserved"):
        register_kernel("predict", "auto", ref)
    with pytest.raises(ValueError, match="predict kernel 'reference' is already"):
        register_kernel("predict", "reference", get_kernel("select", "reference"))
    # same name in a different stage is fine - registries are per stage
    register_kernel("select", "probe-select", lambda sorter, sc, k: sorter.select_stack(sc, k))
    try:
        assert "probe-select" in available_kernels("select")
        assert "probe-select" not in available_kernels("predict")
    finally:
        from repro.kernels.registry import _REGISTRIES

        _REGISTRIES["select"].pop("probe-select", None)


def test_env_selected_fused_kernels_engage(monkeypatch):
    """SOFA_PREDICT_KERNEL/SOFA_SELECT_KERNEL=fused routes a default config
    through the fused engine - and stays bit-identical."""
    rng = make_rng(47)
    tokens, q, wk, wv = _head_problem(rng)
    cfg = SofaConfig(tile_cols=16, top_k=0.25)
    ref = SofaAttention(wk, wv, cfg)(tokens, q)
    monkeypatch.setenv("SOFA_PREDICT_KERNEL", "fused")
    monkeypatch.setenv("SOFA_SELECT_KERNEL", "fused")
    FUSED.last_probe = None
    got = SofaAttention(wk, wv, cfg)(tokens, q)
    assert FUSED.last_probe is not None  # the fused path actually ran
    _assert_results_equal(ref, got)


# ------------------------------------------------- cross-process coverage
@pytest.mark.cluster
def test_cluster_fused_mapping_parity_and_stats():
    from repro.cluster import EngineCluster

    rng = make_rng(53)
    requests = _engine_requests(rng)
    with SofaEngine(max_batch_heads=4) as engine:
        ref = engine.run(requests)
    fused_sel = {"predict": "fused", "select": "fused"}
    with EngineCluster(n_workers=2, kernel=fused_sel, max_batch_heads=4) as cluster:
        got = cluster.run(requests)
        workers = cluster.stats.workers
    for a, b in zip(ref, got):
        _assert_results_equal(a, b)
    # Stats snapshots piggyback on result messages, so only workers that
    # actually served requests report their resolved kernels.
    served = [w for w in workers if w.n_requests > 0]
    assert served and all(
        w.kernels.get("predict") == "fused" and w.kernels.get("select") == "fused"
        for w in served
    )
    with pytest.raises(ValueError, match="unknown predict kernel"):
        EngineCluster(n_workers=1, kernel={"predict": "typo"})


@pytest.mark.cluster
def test_cluster_env_kernel_selection_reaches_workers(monkeypatch):
    """Env-var kernel selection set in the frontend process propagates into
    the worker processes: their engines resolve - and report - the same
    per-stage kernels, and serve bit-identically."""
    from repro.cluster import EngineCluster

    rng = make_rng(59)
    requests = _engine_requests(rng)
    with SofaEngine(max_batch_heads=4) as engine:
        ref = engine.run(requests)  # resolved before the env overrides
    monkeypatch.setenv("SOFA_PREDICT_KERNEL", "fused")
    monkeypatch.setenv("SOFA_SELECT_KERNEL", "fused")
    monkeypatch.setenv("SOFA_SUFA_KERNEL", "reference")
    with EngineCluster(n_workers=2, max_batch_heads=4) as cluster:
        got = cluster.run(requests)
        workers = cluster.stats.workers
    for a, b in zip(ref, got):
        _assert_results_equal(a, b)
    served = [w for w in workers if w.n_requests > 0]
    assert served
    for w in served:
        assert w.kernels == {
            "predict": "fused", "select": "fused", "stream": "reference"
        }


@pytest.mark.socket
def test_socket_workers_resolve_env_kernels(monkeypatch):
    """The same propagation across the socket transport: standalone worker
    processes inherit the env selection and report it through the
    piggybacked stats snapshots."""
    from repro.cluster import EngineCluster

    rng = make_rng(61)
    requests = _engine_requests(rng, n=6)
    with SofaEngine(max_batch_heads=4) as engine:
        ref = engine.run(requests)
    monkeypatch.setenv("SOFA_PREDICT_KERNEL", "fused")
    monkeypatch.setenv("SOFA_SELECT_KERNEL", "fused")
    with EngineCluster(
        n_workers=2, transport="socket", max_batch_heads=4
    ) as cluster:
        got = cluster.run(requests)
        workers = cluster.stats.workers
    for a, b in zip(ref, got):
        _assert_results_equal(a, b)
    served = [w for w in workers if w.n_requests > 0]
    assert served and all(
        w.kernels.get("predict") == "fused" and w.kernels.get("select") == "fused"
        for w in served
    )
