"""Tests for the whole-row dynamic-sparsity baseline."""

import numpy as np

from repro.attention.dynamic_sparse import (
    dynamic_sparse_attention,
    prediction_rank_fidelity,
    scores_for_prediction,
)
from repro.attention.reference import masked_attention
from repro.attention.topk import indices_to_mask
from repro.utils.rng import make_rng


def _qkv(rng, t=6, s=48, d=16):
    return rng.normal(size=(t, d)), rng.normal(size=(s, d)), rng.normal(size=(s, d))


def test_output_matches_masked_reference():
    rng = make_rng(21)
    q, k, v = _qkv(rng)
    res = dynamic_sparse_attention(q, k, v, top_k=8)
    mask = indices_to_mask(res.selected, k.shape[0])
    np.testing.assert_allclose(res.output, masked_attention(q, k, v, mask), atol=1e-10)


def test_selected_counts():
    rng = make_rng(22)
    q, k, v = _qkv(rng)
    res = dynamic_sparse_attention(q, k, v, top_k=8)
    assert res.selected.shape == (6, 8)


def test_dram_spill_kicks_in_below_budget():
    """A tiny SRAM budget forces the Pre-Atten/Atten round trip."""
    rng = make_rng(23)
    q, k, v = _qkv(rng, t=16, s=128)
    small = dynamic_sparse_attention(q, k, v, top_k=16, sram_bytes=128)
    large = dynamic_sparse_attention(q, k, v, top_k=16, sram_bytes=10**9)
    assert small.dram_bytes > large.dram_bytes


def test_sram_needed_reported():
    rng = make_rng(24)
    q, k, v = _qkv(rng, t=16, s=128)
    res = dynamic_sparse_attention(q, k, v, top_k=16)
    assert res.sram_bytes_needed >= 16 * 128 * 0.5


def test_op_counter_has_all_stages():
    rng = make_rng(25)
    q, k, v = _qkv(rng)
    ops = dynamic_sparse_attention(q, k, v, top_k=8).ops
    assert ops["mul"] > 0       # prediction + formal matmuls
    assert ops["compare"] > 0   # top-k sorting
    assert ops["exp"] > 0       # softmax


def test_prediction_scores_correlate_with_exact():
    rng = make_rng(26)
    q, k, v = _qkv(rng, t=8, s=64)
    approx = scores_for_prediction(q, k, bits=4)
    exact = q @ k.T / np.sqrt(16)
    corr = np.corrcoef(approx.ravel(), exact.ravel())[0, 1]
    assert corr > 0.95


def test_prediction_fidelity_improves_with_bits():
    rng = make_rng(27)
    q, k, v = _qkv(rng, t=8, s=64)
    low = prediction_rank_fidelity(q, k, bits=2, top_k=8)
    high = prediction_rank_fidelity(q, k, bits=8, top_k=8)
    assert high >= low
    assert high > 0.9
