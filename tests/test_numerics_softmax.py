"""Tests for softmax references, including streaming order-invariance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.numerics.softmax import (
    StreamingState,
    log_sum_exp,
    softmax,
    streaming_softmax_row,
)


def test_softmax_rows_sum_to_one(rng):
    probs = softmax(rng.normal(size=(5, 12)))
    np.testing.assert_allclose(probs.sum(axis=-1), 1.0)


def test_softmax_stable_for_large_scores():
    probs = softmax(np.array([1e4, 1e4 - 1.0]))
    assert np.isfinite(probs).all()
    assert probs[0] > probs[1]


def test_softmax_shift_invariance(rng):
    x = rng.normal(size=16)
    np.testing.assert_allclose(softmax(x), softmax(x + 123.0), atol=1e-12)


def test_streaming_matches_batch(rng):
    scores = rng.normal(size=20)
    values = rng.normal(size=(20, 4))
    expected = softmax(scores) @ values
    np.testing.assert_allclose(streaming_softmax_row(scores, values), expected, atol=1e-12)


@given(
    hnp.arrays(np.float64, st.integers(2, 24), elements=st.floats(-40, 40, allow_nan=False)),
    st.randoms(use_true_random=False),
)
@settings(max_examples=60, deadline=None)
def test_streaming_order_invariance(scores, pyrandom):
    """The (m, l, o) streaming state is permutation-invariant - the property
    that legalizes FlashAttention tiling and SU-FA reordering."""
    n = scores.shape[0]
    values = np.arange(n * 3, dtype=np.float64).reshape(n, 3)
    order = list(range(n))
    pyrandom.shuffle(order)
    base = streaming_softmax_row(scores, values)
    shuffled = streaming_softmax_row(scores, values, order=np.array(order))
    np.testing.assert_allclose(shuffled, base, atol=1e-9)


def test_streaming_rejects_bad_shapes():
    with pytest.raises(ValueError):
        streaming_softmax_row(np.zeros((2, 2)), np.zeros((2, 2)))


def test_streaming_state_merge_tracks_max():
    state = StreamingState(m=-np.inf, l=0.0, o=np.zeros(2))
    state.merge(1.0, np.ones(2))
    state.merge(3.0, np.ones(2))
    assert state.m == 3.0


def test_log_sum_exp_matches_naive(rng):
    x = rng.normal(size=(4, 9))
    np.testing.assert_allclose(
        log_sum_exp(x), np.log(np.exp(x).sum(axis=-1)), atol=1e-12
    )


def test_log_sum_exp_stable():
    assert np.isfinite(log_sum_exp(np.array([1e4, 1e4])))
