"""Telemetry-parity sweep: the plane must never change what is served.

The standing contract is bit-for-bit parity across every serving tier;
this suite turns the telemetry switch on and re-asserts it for the
in-process engine (sync and threads backends) and the cluster (local and
socket transports), down to op counters and stage traces.  It also pins
the codec's optional ``trace`` field (old frames still decode, dedup
fingerprints ignore it) and the acceptance criterion of the plane: one
request served over the socket transport yields a single stitched trace -
frontend and worker spans sharing a trace id - exportable as valid Chrome
trace-event JSON.
"""

import json

import numpy as np
import pytest

import repro.obs as obs
from repro.cluster import EngineCluster
from repro.core.config import SofaConfig
from repro.engine import AttentionRequest, SofaEngine
from repro.engine.codec import (
    decode_request,
    encode_request,
    request_fingerprint,
    request_trace_context,
)
from repro.utils.rng import make_rng

CFG = SofaConfig(tile_cols=16, top_k=0.25)


def _make_requests(seed: int, n: int) -> list[AttentionRequest]:
    rng = make_rng(seed)
    return [
        AttentionRequest(
            tokens=rng.integers(-100, 100, size=(32 if i % 2 else 48, 8)).astype(
                np.float64
            ),
            q=rng.normal(size=(3, 8)),
            wk=rng.normal(size=(8, 8)),
            wv=rng.normal(size=(8, 8)),
        )
        for i in range(n)
    ]


def _fingerprints(results):
    return [
        (
            r.output.tobytes(),
            r.selected.tobytes(),
            tuple(sorted(r.total_ops.counts.items())),
            tuple(s.name for s in r.stages),
        )
        for r in results
    ]


@pytest.fixture
def telemetry_off():
    """Force-disable for the reference run; restore the env verdict after."""
    yield obs.reset_telemetry(enabled=False)
    obs.reset_telemetry()


@pytest.fixture
def telemetry_env_on(monkeypatch):
    """Enable via the environment (inherited by worker processes too)."""
    monkeypatch.setenv(obs.ENV_VAR, "1")
    yield obs.reset_telemetry()
    monkeypatch.delenv(obs.ENV_VAR)
    obs.reset_telemetry()


# ------------------------------------------------------------ engine parity
@pytest.mark.parametrize("backend", ["sync", "threads"])
def test_engine_parity_with_telemetry(backend, telemetry_off):
    requests = _make_requests(seed=31, n=6)
    with SofaEngine(CFG, backend=backend) as engine:
        ref = _fingerprints(engine.run(requests))

    obs.reset_telemetry(enabled=True)
    with SofaEngine(CFG, backend=backend) as engine:
        got = _fingerprints(engine.run(requests))
    assert ref == got

    # and the plane actually observed the traffic it did not perturb
    t = obs.get_telemetry()
    snap = t.registry.snapshot()
    assert snap["counters"]["sofa_engine_requests_total"] == len(requests)
    assert snap["histograms"]["sofa_engine_request_latency_seconds"]["count"] == len(
        requests
    )
    assert snap["histograms"]["sofa_engine_execute_seconds"]["count"] >= 1
    names = {r["name"] for r in t.tracer.spans()}
    assert "engine.request" in names
    assert "engine.batch" in names
    assert names & {"stage.predict_select_fused", "stage.predict"}
    assert "stage.stream" in names


@pytest.mark.cluster
def test_cluster_local_parity_with_telemetry(telemetry_off):
    requests = _make_requests(seed=32, n=6)
    with SofaEngine(CFG) as engine:
        ref = _fingerprints(engine.run(requests))
    with EngineCluster(n_workers=2, config=CFG) as cluster:
        baseline = _fingerprints(cluster.run(requests))
    assert ref == baseline


@pytest.mark.cluster
def test_cluster_local_parity_telemetry_enabled(telemetry_off, telemetry_env_on):
    requests = _make_requests(seed=32, n=6)
    with SofaEngine(CFG) as engine:
        ref = _fingerprints(engine.run(requests))
    with EngineCluster(n_workers=2, config=CFG) as cluster:
        got = _fingerprints(cluster.run(requests))
        stats = cluster.stats
    assert ref == got
    # worker registries rode home on the stats channel and merge cleanly
    worker_snaps = [w.telemetry for w in stats.workers if w.telemetry]
    assert worker_snaps, "no worker shipped a telemetry snapshot"
    merged = obs.merge_snapshots(*worker_snaps)
    assert merged["counters"]["sofa_engine_requests_total"] == len(requests)


@pytest.mark.socket
def test_cluster_socket_parity_telemetry_enabled(telemetry_off, telemetry_env_on):
    requests = _make_requests(seed=33, n=4)
    with SofaEngine(CFG) as engine:
        ref = _fingerprints(engine.run(requests))
    with EngineCluster(n_workers=2, config=CFG, transport="socket") as cluster:
        got = _fingerprints(cluster.run(requests))
    assert ref == got


# --------------------------------------------------------- stitched tracing
@pytest.mark.socket
def test_one_socket_request_yields_one_stitched_chrome_trace(telemetry_env_on):
    """The PR's acceptance criterion, end to end over the socket hop."""
    (request,) = _make_requests(seed=34, n=1)
    with EngineCluster(n_workers=2, config=CFG, transport="socket") as cluster:
        cluster.run([request])
        t = obs.get_telemetry()
        spans = t.tracer.spans()
        trace = t.tracer.chrome_trace()

    by_name = {}
    for record in spans:
        by_name.setdefault(record["name"], []).append(record)
    (root,) = by_name["cluster.request"]
    (rpc,) = by_name["cluster.rpc"]
    (worker,) = by_name["worker.request"]
    # one trace id stitches the frontend and worker sides together
    assert rpc["trace_id"] == root["trace_id"]
    assert rpc["parent_id"] == root["span_id"]
    assert worker["trace_id"] == root["trace_id"]
    assert worker["parent_id"] == root["span_id"]
    assert worker["pid"] != root["pid"]  # genuinely crossed the process line
    # the worker's inner engine spans came along on the piggyback channel
    assert "engine.batch" in by_name

    # and the export is valid Chrome trace-event JSON covering both pids
    serialized = json.dumps(trace)
    parsed = json.loads(serialized)
    events = parsed["traceEvents"]
    pids = {e["pid"] for e in events if e["ph"] == "X"}
    assert root["pid"] in pids and worker["pid"] in pids
    stitched = [
        e for e in events
        if e["ph"] == "X" and e["args"].get("trace_id") == root["trace_id"]
    ]
    assert len(stitched) >= 3  # root + rpc + worker.request at minimum


@pytest.mark.cluster
def test_dedup_survives_tracing_and_marks_follower_spans(telemetry_env_on):
    (request,) = _make_requests(seed=35, n=1)
    with EngineCluster(n_workers=2, config=CFG) as cluster:
        futures = cluster.submit_many([request, request])
        cluster.flush()
        for future in futures:
            future.result()
        stats = cluster.stats
        spans = obs.get_telemetry().tracer.spans()
    # distinct trace ids per submission must not defeat fingerprint dedup
    assert stats.n_deduped == 1
    roots = [r for r in spans if r["name"] == "cluster.request"]
    assert len(roots) == 2
    assert [r["attrs"].get("deduped") for r in roots].count(True) == 1


# ------------------------------------------------------------- codec field
def test_codec_trace_field_roundtrip_and_old_frame_compat():
    (request,) = _make_requests(seed=36, n=1)
    plain = encode_request(request)
    traced = encode_request(request, trace=("a" * 16, "b" * 16))
    assert "trace" not in plain
    assert request_trace_context(plain) is None
    assert request_trace_context(traced) == ("a" * 16, "b" * 16)
    # tracing is observability-only: decode parity and dedup identity hold
    for payload in (plain, traced):
        decoded = decode_request(payload)
        assert decoded.tokens.tobytes() == request.tokens.tobytes()
        assert decoded.q.tobytes() == request.q.tobytes()
    assert request_fingerprint(plain) == request_fingerprint(traced)


@pytest.mark.parametrize(
    "malformed",
    [None, "just-a-string", ("only-one",), ("a", 7), ("", "b"), ["a", "b", "c"]],
)
def test_request_trace_context_is_defensive(malformed):
    (request,) = _make_requests(seed=37, n=1)
    payload = encode_request(request)
    if malformed is not None:
        payload["trace"] = malformed
    assert request_trace_context(payload) is None


def test_request_trace_context_accepts_list_form():
    # framed transports may round-trip the tuple as a list
    (request,) = _make_requests(seed=38, n=1)
    payload = encode_request(request, trace=("a" * 16, "b" * 16))
    payload["trace"] = list(payload["trace"])
    assert request_trace_context(payload) == ("a" * 16, "b" * 16)


# --------------------------------------------------- satellite: worker stats
@pytest.mark.cluster
def test_worker_stats_distinguish_no_snapshot_from_zeros():
    with EngineCluster(n_workers=2, config=CFG) as cluster:
        before = cluster.stats
        # no result frame yet: counters are zeros, and the flag says why
        assert all(not w.snapshot_received for w in before.workers)
        assert all(w.n_requests == 0 for w in before.workers)
        cluster.run(_make_requests(seed=39, n=4))
        after = cluster.stats
        served = [w for w in after.workers if w.snapshot_received]
        assert served, "no worker ever reported a snapshot"
        assert sum(w.n_requests for w in served) == 4
        # without telemetry enabled the snapshots carry no registry dump
        assert all(w.telemetry is None for w in after.workers)


# ------------------------------------------------ satellite: batch timings
def test_batch_records_carry_queue_wait_and_execute_times(telemetry_off):
    # unconditional timings: present with the telemetry plane disabled
    requests = _make_requests(seed=40, n=4)
    with SofaEngine(CFG) as engine:
        for request in requests:
            engine.submit(request)
        records = engine.run_until_drained()
    assert records
    for record in records:
        assert record.queue_wait_s >= 0.0
        assert record.execute_s > 0.0
