"""Tests for the zero-eliminator measurement model."""

import numpy as np
import pytest

from repro.core.zero_elimination import (
    ZeroProfile,
    effective_nonzero_fraction,
    profile_zeros,
    quantization_zero_fraction,
)
from repro.utils.rng import make_rng


def test_profile_counts_zeros():
    arr = np.array([[0, 1], [2, 0], [0, 0]])
    profile = profile_zeros(arr)
    assert profile.nonzero_fraction == pytest.approx(2 / 6)
    np.testing.assert_allclose(profile.column_nonzero, [1 / 3, 1 / 3])


def test_profile_rejects_non_2d():
    with pytest.raises(ValueError):
        profile_zeros(np.zeros(4))


def test_dense_tensor_no_savings():
    profile = profile_zeros(np.ones((4, 4)))
    assert profile.nonzero_fraction == 1.0
    assert effective_nonzero_fraction(profile) == 1.0


def test_effective_fraction_bounded_by_lookahead():
    """An all-zero column still issues 1/window of its slots."""
    profile = profile_zeros(np.zeros((8, 4)))
    assert effective_nonzero_fraction(profile, lookahead=4) == pytest.approx(0.25)
    assert effective_nonzero_fraction(profile, lookahead=8) == pytest.approx(0.125)


def test_effective_fraction_column_imbalance():
    """One dense column drags the realizable skip rate up."""
    arr = np.zeros((8, 2))
    arr[:, 0] = 1.0
    profile = profile_zeros(arr)
    assert effective_nonzero_fraction(profile, lookahead=4) == pytest.approx(
        (1.0 + 0.25) / 2
    )


def test_effective_fraction_validates_lookahead():
    with pytest.raises(ValueError):
        effective_nonzero_fraction(ZeroProfile(1.0, np.ones(2)), lookahead=0)


def test_quantization_zeroing_grows_with_narrow_width():
    rng = make_rng(81)
    values = rng.normal(0, 1, size=(64, 64))
    z4 = quantization_zero_fraction(values, 4)
    z8 = quantization_zero_fraction(values, 8)
    assert z4 > z8


def test_engine_consumes_measured_fraction():
    """The DLZS engine's energy must scale with the measured zero profile."""
    from repro.hw.units import DlzsEngine

    rng = make_rng(82)
    weights = rng.normal(0, 0.5, size=(64, 64))
    weights[np.abs(weights) < 0.4] = 0.0
    frac = effective_nonzero_fraction(profile_zeros(weights))
    engine = DlzsEngine()
    full = engine.predict_keys(32, 64, 64, nonzero_fraction=1.0)
    thinned = engine.predict_keys(32, 64, 64, nonzero_fraction=frac)
    assert thinned.energy_j == pytest.approx(full.energy_j * frac, rel=0.01)
