"""Unit tests for :mod:`repro.obs.tracing` and the Telemetry switchboard.

Pins the span model (nesting via the per-thread stack, cross-thread
start/end pairs, cross-process parentage via explicit ids), the bounded
ring buffer, and the Chrome trace-event export shape.
"""

import json
import threading

import pytest

import repro.obs as obs
from repro.obs import Tracer, new_span_id, new_trace_id


# ------------------------------------------------------------------ id utils
def test_ids_are_64_bit_hex_and_distinct():
    a, b = new_trace_id(), new_trace_id()
    assert a != b
    assert len(a) == 16
    int(a, 16)  # valid hex
    assert len(new_span_id()) == 16


# ------------------------------------------------------------- span lifecycle
def test_start_end_produces_a_finished_record():
    tracer = Tracer()
    span = tracer.start("engine.request", attrs={"s": 32})
    record = tracer.end(span, outcome="ok")
    assert record["name"] == "engine.request"
    assert record["trace_id"] == span.trace_id
    assert record["span_id"] == span.span_id
    assert record["parent_id"] is None
    assert record["duration_s"] >= 0.0
    assert record["attrs"] == {"s": 32, "outcome": "ok"}
    assert tracer.spans() == [record]


def test_context_manager_spans_nest_through_the_thread_stack():
    tracer = Tracer()
    with tracer.span("engine.batch") as outer:
        with tracer.span("stage.predict") as inner:
            assert inner.trace_id == outer.trace_id
            assert inner.parent_id == outer.span_id
    names = [r["name"] for r in tracer.spans()]
    assert names == ["stage.predict", "engine.batch"]  # inner finishes first


def test_start_end_pairs_do_not_touch_the_nesting_stack():
    # A request span starts on the submit path and ends on an executor
    # thread; it must not become the parent of unrelated ctx spans.
    tracer = Tracer()
    request_span = tracer.start("engine.request")
    with tracer.span("engine.batch") as batch:
        assert batch.parent_id is None  # not parented under request_span
        assert batch.trace_id != request_span.trace_id
    tracer.end(request_span)


def test_explicit_ids_override_the_stack_for_cross_process_parentage():
    tracer = Tracer()
    child = tracer.start("worker.request", trace_id="t" * 16, parent_id="p" * 16)
    record = tracer.end(child)
    assert record["trace_id"] == "t" * 16
    assert record["parent_id"] == "p" * 16


def test_context_manager_records_errors_and_reraises():
    tracer = Tracer()
    with pytest.raises(RuntimeError, match="boom"):
        with tracer.span("engine.batch"):
            raise RuntimeError("boom")
    (record,) = tracer.spans()
    assert "RuntimeError" in record["attrs"]["error"]
    assert tracer.current_span() is None  # the stack unwound


def test_spans_cross_threads():
    tracer = Tracer()
    span = tracer.start("engine.request")
    worker = threading.Thread(target=tracer.end, args=(span,))
    worker.start()
    worker.join()
    (record,) = tracer.spans()
    assert record["name"] == "engine.request"


# --------------------------------------------------------------- ring buffer
def test_ring_buffer_drops_oldest_beyond_capacity():
    tracer = Tracer(capacity=3)
    for i in range(5):
        tracer.end(tracer.start(f"s{i}"))
    assert [r["name"] for r in tracer.spans()] == ["s2", "s3", "s4"]
    with pytest.raises(ValueError, match="capacity"):
        Tracer(capacity=0)


def test_drain_empties_and_ingest_merges():
    tracer = Tracer()
    tracer.end(tracer.start("a"))
    drained = tracer.drain()
    assert [r["name"] for r in drained] == ["a"]
    assert tracer.spans() == []
    # the piggyback channel: a worker's drained spans merge into the
    # frontend's buffer; junk entries are ignored, not fatal
    assert tracer.ingest(drained + ["junk", {"no_name": 1}]) == 1
    assert [r["name"] for r in tracer.spans()] == ["a"]


# -------------------------------------------------------------- chrome export
def test_chrome_trace_export_shape():
    tracer = Tracer(process_label="frontend")
    with tracer.span("engine.batch", attrs={"n_heads": 2}):
        pass
    trace = tracer.chrome_trace()
    json.dumps(trace)  # must serialize as-is
    assert trace["displayTimeUnit"] == "ms"
    events = trace["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    complete = [e for e in events if e["ph"] == "X"]
    assert len(meta) == 1 and meta[0]["args"]["name"] == "frontend"
    (event,) = complete
    assert event["name"] == "engine.batch"
    assert event["cat"] == "sofa"
    assert event["ts"] > 0 and event["dur"] >= 0  # microseconds
    assert event["args"]["n_heads"] == 2
    assert event["args"]["trace_id"]


def test_chrome_trace_names_each_distinct_pid():
    tracer = Tracer(process_label="frontend")
    tracer.end(tracer.start("local"))
    tracer.ingest([{
        "name": "worker.request", "trace_id": "t", "span_id": "s",
        "parent_id": None, "start_wall": 1.0, "duration_s": 0.5,
        "pid": 99999, "tid": 1, "process": "worker-0", "attrs": {},
    }])
    meta = {
        e["pid"]: e["args"]["name"]
        for e in tracer.chrome_trace()["traceEvents"]
        if e["ph"] == "M"
    }
    assert meta[99999] == "worker-0"
    assert len(meta) == 2


# ------------------------------------------------------------- the switchboard
@pytest.fixture
def fresh_telemetry():
    yield obs.reset_telemetry(enabled=False)
    obs.reset_telemetry()  # back to the environment's verdict


def test_disabled_telemetry_is_a_no_op(fresh_telemetry):
    t = fresh_telemetry
    assert not t.enabled
    assert t.clock() == 0.0
    assert t.start_span("x") is None
    t.end_span(None)  # no-op, no raise
    t.inc("c")
    t.observe("h", 1.0)
    t.observe_since("h", 0.0)
    with t.span("x", hist="h"):
        pass
    snap = t.registry.snapshot()
    assert snap["counters"] == {} and snap["histograms"] == {}
    assert t.tracer.spans() == []


def test_enabled_telemetry_records_and_times(fresh_telemetry):
    t = obs.enable()
    t.inc("req_total", 2)
    t0 = t.clock()
    assert t0 > 0.0
    t.observe_since("lat", t0)
    with t.span("engine.batch", attrs={"n": 1}, hist="batch_lat"):
        pass
    snap = t.registry.snapshot()
    assert snap["counters"]["req_total"] == 2.0
    assert snap["histograms"]["lat"]["count"] == 1
    assert snap["histograms"]["batch_lat"]["count"] == 1
    assert [r["name"] for r in t.tracer.spans()] == ["engine.batch"]


def test_end_span_lands_after_mid_stream_disable(fresh_telemetry):
    t = obs.enable()
    span = t.start_span("engine.request")
    obs.disable()
    t.end_span(span)  # opened before the disable: must not leak
    assert [r["name"] for r in t.tracer.spans()] == ["engine.request"]


def test_reset_telemetry_replaces_registry_and_tracer(fresh_telemetry):
    t = obs.enable()
    t.inc("c")
    t.end_span(t.start_span("s"))
    fresh = obs.reset_telemetry(enabled=True)
    assert fresh is obs.get_telemetry()
    assert fresh.registry.snapshot()["counters"] == {}
    assert fresh.tracer.spans() == []


def test_env_var_seeds_the_singleton(fresh_telemetry, monkeypatch):
    monkeypatch.setenv(obs.ENV_VAR, "1")
    assert obs.reset_telemetry().enabled
    monkeypatch.setenv(obs.ENV_VAR, "off")
    assert not obs.reset_telemetry().enabled
    monkeypatch.delenv(obs.ENV_VAR)
    assert not obs.reset_telemetry().enabled
