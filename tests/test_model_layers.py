"""Tests for the numpy Transformer layers."""

import numpy as np

from repro.model.config import get_model
from repro.model.layers import (
    FeedForward,
    LinearLayer,
    MultiHeadAttention,
    TransformerBlock,
    gelu,
    layer_norm,
    merge_heads,
    split_heads,
)
from repro.numerics.softmax import softmax


def test_layer_norm_zero_mean_unit_var(rng):
    out = layer_norm(rng.normal(3.0, 5.0, size=(4, 64)))
    np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-9)
    np.testing.assert_allclose(out.var(axis=-1), 1.0, atol=1e-3)


def test_gelu_limits():
    assert gelu(np.array([10.0]))[0] == np.testing.assert_allclose(
        gelu(np.array([10.0]))[0], 10.0, atol=1e-3
    ) or True
    np.testing.assert_allclose(gelu(np.array([-10.0]))[0], 0.0, atol=1e-3)
    assert gelu(np.array([0.0]))[0] == 0.0


def test_linear_layer_shapes(rng):
    layer = LinearLayer.init(rng, 8, 16)
    out = layer(rng.normal(size=(5, 8)))
    assert out.shape == (5, 16)


def test_split_merge_heads_roundtrip(rng):
    x = rng.normal(size=(6, 12))
    np.testing.assert_allclose(merge_heads(split_heads(x, 3)), x)


def test_mha_matches_manual_computation(rng):
    cfg = get_model("bert-base")
    small = cfg.scaled_to(cfg.default_seq_len)
    mha = MultiHeadAttention.init(rng, small)
    x = rng.normal(size=(10, small.hidden))
    out = mha(x)
    # manual per-head attention
    q, k, v = mha.project_qkv(x)
    heads = []
    for h in range(small.n_heads):
        scores = q[h] @ k[h].T / np.sqrt(q.shape[-1])
        heads.append(softmax(scores, axis=-1) @ v[h])
    expected = mha.wo(merge_heads(np.stack(heads)))
    np.testing.assert_allclose(out, expected, atol=1e-10)


def test_mha_custom_attention_fn_used(rng):
    cfg = get_model("bert-base")
    mha = MultiHeadAttention.init(rng, cfg)
    x = rng.normal(size=(4, cfg.hidden))
    calls = []

    def fake_attention(q, k, v):
        calls.append(q.shape)
        return np.zeros((q.shape[0], v.shape[1]))

    out = mha(x, attention_fn=fake_attention)
    assert len(calls) == cfg.n_heads
    np.testing.assert_allclose(out, np.tile(mha.wo.bias, (4, 1)))


def test_ffn_shapes(rng):
    cfg = get_model("bert-base")
    ffn = FeedForward.init(rng, cfg)
    out = ffn(rng.normal(size=(3, cfg.hidden)))
    assert out.shape == (3, cfg.hidden)


def test_block_residual_structure(rng):
    cfg = get_model("bert-base")
    block = TransformerBlock.init(rng, cfg)
    x = rng.normal(size=(4, cfg.hidden))
    out = block(x)
    assert out.shape == x.shape
    assert not np.allclose(out, x)
