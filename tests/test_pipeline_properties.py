"""Property tests on the cross-stage pipeline over randomized geometries."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SofaConfig
from repro.core.pipeline import SofaAttention
from repro.utils.rng import make_rng


@given(
    seq_len=st.sampled_from([48, 64, 96, 128]),
    tile_cols=st.sampled_from([8, 16, 32, 64]),
    top_k=st.integers(4, 24),
    seed=st.integers(0, 50),
)
@settings(max_examples=25, deadline=None)
def test_pipeline_invariants_over_geometries(seq_len, tile_cols, top_k, seed):
    """For any (S, Bc, k) geometry: the pipeline returns exactly k unique
    valid indices per row, a finite output matching the masked reference,
    and zero DRAM traffic from the sorting stage."""
    rng = make_rng(seed)
    h, d, t = 32, 16, 6
    tokens = np.clip(np.rint(rng.normal(0, 40, size=(seq_len, h))), -127, 127)
    wk = np.clip(np.rint(rng.normal(0, 10, size=(h, d))), -127, 127)
    wv = np.clip(np.rint(rng.normal(0, 10, size=(h, d))), -127, 127)
    q = rng.normal(size=(t, d))

    cfg = SofaConfig(tile_cols=tile_cols, top_k=top_k)
    op = SofaAttention(wk, wv, cfg)
    res = op(tokens, q)

    assert res.selected.shape == (t, top_k)
    for row in res.selected:
        assert np.unique(row).size == top_k
        assert row.min() >= 0 and row.max() < seq_len
    assert np.isfinite(res.output).all()
    assert res.stages[1].dram_bytes == 0.0

    ref = op.reference_output(tokens, q, res.selected)
    np.testing.assert_allclose(res.output, ref, atol=1e-8)


@given(tile_cols=st.sampled_from([8, 16, 32]), seed=st.integers(0, 20))
@settings(max_examples=15, deadline=None)
def test_tile_width_does_not_change_exactness(tile_cols, seed):
    """Tiling is a dataflow choice: outputs stay exact for any Bc, only the
    selection (which depends on segment boundaries) may differ."""
    rng = make_rng(seed)
    tokens = np.clip(np.rint(rng.normal(0, 40, size=(64, 32))), -127, 127)
    wk = np.clip(np.rint(rng.normal(0, 10, size=(32, 16))), -127, 127)
    wv = np.clip(np.rint(rng.normal(0, 10, size=(32, 16))), -127, 127)
    q = rng.normal(size=(4, 16))

    op = SofaAttention(wk, wv, SofaConfig(tile_cols=tile_cols, top_k=12))
    res = op(tokens, q)
    ref = op.reference_output(tokens, q, res.selected)
    np.testing.assert_allclose(res.output, ref, atol=1e-8)
