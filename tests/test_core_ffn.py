"""Tests for layer-specific FFN sparsity."""

import numpy as np
import pytest

from repro.core.ffn import LayerSpecificFfnSparsity, calibrate_keep_fractions
from repro.utils.rng import make_rng


def _layer(rng, h=32, f=128, concentrated=True):
    w1 = rng.normal(0, 1.0 / np.sqrt(h), size=(h, f))
    if concentrated:
        # a subset of neurons carries most of the signal energy
        boost = rng.choice(f, size=f // 8, replace=False)
        w1[:, boost] *= 6.0
    w2 = rng.normal(0, 1.0 / np.sqrt(f), size=(f, h))
    return w1, w2


def test_keep_all_equals_dense():
    rng = make_rng(71)
    w1, w2 = _layer(rng)
    ffn = LayerSpecificFfnSparsity(w1, w2, keep_fraction=1.0)
    x = rng.normal(size=(6, 32))
    res = ffn(x)
    np.testing.assert_allclose(res.output, ffn.dense_forward(x), atol=1e-9)


def test_sparse_output_tracks_dense_on_concentrated_layer():
    rng = make_rng(72)
    w1, w2 = _layer(rng, concentrated=True)
    ffn = LayerSpecificFfnSparsity(w1, w2, keep_fraction=0.3)
    x = rng.normal(size=(8, 32))
    res = ffn(x)
    dense = ffn.dense_forward(x)
    rel = np.linalg.norm(res.output - dense) / np.linalg.norm(dense)
    assert rel < 0.25


def test_computation_reduction_positive():
    rng = make_rng(73)
    w1, w2 = _layer(rng)
    res = LayerSpecificFfnSparsity(w1, w2, keep_fraction=0.2)(rng.normal(size=(4, 32)))
    assert res.computation_reduction > 0.4


def test_selected_shape_matches_keep_fraction():
    rng = make_rng(74)
    w1, w2 = _layer(rng, f=100)
    res = LayerSpecificFfnSparsity(w1, w2, keep_fraction=0.25)(rng.normal(size=(3, 32)))
    assert res.selected.shape == (3, 25)


def test_prediction_is_multiplier_free():
    rng = make_rng(75)
    w1, w2 = _layer(rng)
    ffn = LayerSpecificFfnSparsity(w1, w2, keep_fraction=0.3)
    _, ops = ffn.predict_neurons(rng.normal(size=(4, 32)))
    assert ops["mul"] == 0
    assert ops["shift"] > 0


def test_shape_validation():
    rng = make_rng(76)
    with pytest.raises(ValueError):
        LayerSpecificFfnSparsity(rng.normal(size=(8, 16)), rng.normal(size=(8, 8)))
    w1, w2 = _layer(rng)
    with pytest.raises(ValueError):
        LayerSpecificFfnSparsity(w1, w2, keep_fraction=0.0)
    ffn = LayerSpecificFfnSparsity(w1, w2)
    with pytest.raises(ValueError):
        ffn(rng.normal(size=(4, 99)))


def test_calibration_is_layer_specific():
    """Layers with different activation concentration get different budgets."""
    rng = make_rng(77)
    sparse_layer = _layer(rng, concentrated=True)
    dense_layer = _layer(rng, concentrated=False)
    xs = [rng.normal(size=(8, 32)), rng.normal(size=(8, 32))]
    fracs = calibrate_keep_fractions(
        [sparse_layer, dense_layer], xs, error_budget=0.12
    )
    assert fracs[0] <= fracs[1]
    assert all(0 < f <= 1 for f in fracs)


def test_calibration_respects_budget():
    rng = make_rng(78)
    layer = _layer(rng, concentrated=True)
    x = rng.normal(size=(8, 32))
    (frac,) = calibrate_keep_fractions([layer], [x], error_budget=0.1)
    ffn = LayerSpecificFfnSparsity(*layer, keep_fraction=frac)
    dense = ffn.dense_forward(x)
    rel = np.linalg.norm(ffn(x).output - dense) / np.linalg.norm(dense)
    assert rel <= 0.1 + 1e-9


def test_calibration_input_validation():
    rng = make_rng(79)
    with pytest.raises(ValueError):
        calibrate_keep_fractions([_layer(rng)], [])


def test_vectorized_forward_matches_per_token_loop_exactly():
    """The batched gathered matmuls reproduce the per-token loop bit for bit
    (each token is its own fixed-shape contraction), for any row chunking."""
    from repro.model.layers import gelu

    rng = make_rng(80)
    w1, w2 = _layer(rng, h=48, f=160)
    ffn = LayerSpecificFfnSparsity(w1, w2, keep_fraction=0.3)
    x = rng.normal(size=(11, 48))
    res = ffn(x)
    loop = np.zeros_like(res.output)
    for i in range(x.shape[0]):
        cols = res.selected[i]
        loop[i] = gelu(x[i] @ w1[:, cols]) @ w2[cols]
    assert res.output.tobytes() == loop.tobytes()
    # chunking is bit-neutral: force one-token chunks
    tiny = LayerSpecificFfnSparsity(w1, w2, keep_fraction=0.3)
    tiny._GATHER_CHUNK_ELEMENTS = 1
    assert tiny(x).output.tobytes() == res.output.tobytes()


def test_vectorized_forward_op_counts_unchanged():
    """Vectorizing the forward must not move the op accounting."""
    rng = make_rng(81)
    w1, w2 = _layer(rng)
    res = LayerSpecificFfnSparsity(w1, w2, keep_fraction=0.25)(rng.normal(size=(5, 32)))
    t, k = res.selected.shape
    h, f = w1.shape
    expected_mul = float(t * h * k) + float(t * k * w2.shape[1])
    # prediction contributes shift/add but no formal muls
    assert res.ops["mul"] == expected_mul
    assert res.ops["exp"] == float(t) * k
