"""Routing-policy tests: affinity invariants, balance, randomized sweep.

Policies are deterministic pure functions of ``(RequestInfo, live
workers)``, so the affinity invariants (same grid -> same worker, same
cache key -> same worker, rendezvous stability under worker loss) are
checked exhaustively at the unit level; a randomized end-to-end sweep
(marker: ``cluster``) then proves the whole frontend - routing + dedup +
a mid-stream worker death - never moves a result bit.
"""

import numpy as np
import pytest

from repro.cluster import EngineCluster, POLICIES, RequestInfo, make_policy
from repro.cluster.routing import (
    CacheAffinityPolicy,
    LeastLoadedPolicy,
    RoundRobinPolicy,
    ShapeAffinityPolicy,
)
from repro.core.config import SofaConfig
from repro.engine import AttentionRequest, SofaEngine
from repro.engine.codec import encode_request, request_fingerprint
from repro.utils.rng import make_rng

CFG = SofaConfig(tile_cols=16, top_k=0.25)


def _info(shape_key: bytes, cache_key: bytes | None = None, cost: float = 1.0):
    return RequestInfo(shape_key=shape_key, cache_key=cache_key, cost=cost)


# ------------------------------------------------------------------ unit level
def test_make_policy_registry():
    for name in POLICIES:
        assert make_policy(name, 3).__class__.name == name
    with pytest.raises(ValueError, match="unknown routing policy"):
        make_policy("nope", 3)


def test_round_robin_cycles_and_skips_dead():
    policy = RoundRobinPolicy(3)
    picks = [policy.route(_info(b"k"), [0, 1, 2]) for _ in range(6)]
    assert picks == [0, 1, 2, 0, 1, 2]
    picks = [policy.route(_info(b"k"), [0, 2]) for _ in range(4)]
    assert 1 not in picks and set(picks) == {0, 2}
    with pytest.raises(ValueError):
        policy.route(_info(b"k"), [])


def test_shape_affinity_same_grid_same_worker():
    policy = ShapeAffinityPolicy(4)
    live = [0, 1, 2, 3]
    rng = make_rng(5)
    for _ in range(50):
        key = rng.bytes(12)
        first = policy.route(_info(key), live)
        assert all(policy.route(_info(key), live) == first for _ in range(3))


def test_affinity_rendezvous_only_remaps_keys_of_the_dead_worker():
    policy = ShapeAffinityPolicy(4)
    rng = make_rng(6)
    keys = [rng.bytes(16) for _ in range(200)]
    full = {k: policy.route(_info(k), [0, 1, 2, 3]) for k in keys}
    assert len(set(full.values())) == 4  # every worker owns some keys
    reduced = {k: policy.route(_info(k), [0, 1, 3]) for k in keys}
    for key in keys:
        if full[key] != 2:
            assert reduced[key] == full[key]  # survivors keep their keys
        else:
            assert reduced[key] in (0, 1, 3)


def test_cache_affinity_sticks_by_key_and_falls_back_to_shape():
    policy = CacheAffinityPolicy(4)
    live = [0, 1, 2, 3]
    rng = make_rng(7)
    for _ in range(50):
        cache_key = rng.bytes(8)
        shape_a, shape_b = rng.bytes(8), rng.bytes(8)
        # same cache key on different grids -> same worker (state lives there)
        assert policy.route(_info(shape_a, cache_key), live) == policy.route(
            _info(shape_b, cache_key), live
        )
    shape = rng.bytes(8)
    keyless = policy.route(_info(shape, None), live)
    assert keyless == ShapeAffinityPolicy(4).route(_info(shape), live)


def test_least_loaded_balances_costs_and_retires():
    policy = LeastLoadedPolicy(3)
    live = [0, 1, 2]
    assert policy.route(_info(b"a", cost=10.0), live) == 0
    assert policy.route(_info(b"b", cost=1.0), live) == 1
    assert policy.route(_info(b"c", cost=1.0), live) == 2
    assert policy.route(_info(b"d", cost=1.0), live) == 1  # lightest after b
    policy.retire(0, 10.0)
    assert policy.route(_info(b"e", cost=1.0), live) == 0
    assert policy.balancer.imbalance <= 2.0


def test_least_loaded_respects_live_subset():
    policy = LeastLoadedPolicy(3)
    for _ in range(5):
        assert policy.route(_info(b"x", cost=1.0), [1, 2]) in (1, 2)
    assert policy.balancer.loads[0] == 0.0


# --------------------------------------------------------------- cluster sweep
def _random_stream(seed: int, n: int) -> list[AttentionRequest]:
    """Mixed traffic: 3 shape classes, decode keys, exact duplicates."""
    rng = make_rng(seed)
    shapes = (24, 32, 48)
    requests: list[AttentionRequest] = []
    for i in range(n):
        s = shapes[int(rng.integers(len(shapes)))]
        req = AttentionRequest(
            tokens=rng.integers(-100, 100, size=(s, 8)).astype(np.float64),
            q=rng.normal(size=(2, 8)),
            wk=rng.normal(size=(8, 8)),
            wv=rng.normal(size=(8, 8)),
            cache_key=f"seq-{i % 5}" if rng.integers(2) else None,
        )
        requests.append(req)
        if rng.integers(3) == 0:  # inject a bit-identical duplicate
            requests.append(
                AttentionRequest(
                    tokens=req.tokens, q=req.q, wk=req.wk, wv=req.wv,
                    cache_key=req.cache_key, tag="dup",
                )
            )
    return requests


@pytest.mark.cluster
@pytest.mark.parametrize("routing", POLICIES)
def test_randomized_sweep_parity_and_dedup(routing):
    requests = _random_stream(seed=101, n=14)
    fingerprints = [request_fingerprint(encode_request(r)) for r in requests]
    n_unique = len(set(fingerprints))
    with SofaEngine(CFG) as engine:
        ref = engine.run(requests)
    with EngineCluster(n_workers=3, config=CFG, routing=routing) as cluster:
        got = cluster.run(requests)
        stats = cluster.stats
    for a, b in zip(ref, got):
        assert a.output.tobytes() == b.output.tobytes()
        assert np.array_equal(a.selected, b.selected)
        assert a.total_ops.counts == b.total_ops.counts
    # dedup correctness: one execution per unique fingerprint, none dropped
    assert stats.n_submitted == len(requests)
    assert stats.n_deduped == len(requests) - n_unique
    assert stats.n_requests == n_unique
    assert stats.n_completed == len(requests)


@pytest.mark.cluster
@pytest.mark.parametrize("routing", POLICIES)
def test_randomized_sweep_survives_mid_stream_worker_death(routing):
    requests = _random_stream(seed=202, n=12)
    with SofaEngine(CFG) as engine:
        ref = engine.run(requests)
    with EngineCluster(n_workers=3, config=CFG, routing=routing) as cluster:
        half = len(requests) // 2
        futures = cluster.submit_many(requests[:half])
        cluster.flush()
        # Stall worker 1 so the second half queues behind its crash point.
        cluster.stall_worker(1, 0.5)
        cluster.crash_worker(1, hard=False, wait=False)
        futures += cluster.submit_many(requests[half:])
        cluster.flush()
        got = [f.result() for f in futures]
        stats = cluster.stats
    for a, b in zip(ref, got):
        assert a.output.tobytes() == b.output.tobytes()
        assert np.array_equal(a.selected, b.selected)
    assert stats.n_worker_failures == 1
    assert stats.n_errors == 0
    assert stats.live_workers == 2
