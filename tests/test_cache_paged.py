"""Paged decode-cache differential sweep: flat vs paged vs uncached.

The paged store's contract is the flat store's contract - a hit is
*provably* bit-identical to recomputation - plus three things the flat
store cannot do: cross-sequence prefix sharing, a hard RAM budget served
from a disk spill tier, and restart survival.  These tests drive the same
shared-prefix decode workload through all three cache modes across the
engine, threaded, and cluster tiers and assert every output, selection and
op count is bit-identical - including sequences that diverge mid-decode
and entries reloaded from the spill tier.
"""

import time

import numpy as np
import pytest

from repro.core.config import SofaConfig
from repro.engine import AttentionRequest, SofaEngine
from repro.engine.cache import make_decode_cache
from repro.utils.rng import make_rng

CFG = SofaConfig(tile_cols=16, top_k=8)
H = D = 12
PREFIX_LEN = 32
BLOCK_TOKENS = 8
N_SESSIONS = 4
N_STEPS = 4


def _workload(seed: int):
    """Shared-prefix decode traffic: N sessions, common system prompt.

    The max-magnitude token sits inside the shared prefix, so every
    session quantizes with the same scale and the prefix rows are
    bit-identical across sessions - the condition under which the paged
    store's content hashing shares their blocks.
    """
    rng = make_rng(seed)
    wk = rng.normal(size=(H, D))
    wv = rng.normal(size=(H, D))
    prefix = rng.integers(-80, 80, size=(PREFIX_LEN, H)).astype(np.float64)
    prefix[3, 5] = 120.0  # the global max lives in the shared prefix
    tails = rng.integers(-60, 60, size=(N_SESSIONS, N_STEPS, H)).astype(np.float64)
    queries = rng.normal(size=(N_STEPS + 1, 2, D))
    return wk, wv, prefix, tails, queries


def _session_tokens(prefix, tails, session, step):
    if step == 0:
        return prefix  # every session starts identical: full entry sharing
    return np.concatenate([prefix, tails[session, :step]])


def _assert_result_identical(ref, got):
    assert ref.output.tobytes() == got.output.tobytes()
    np.testing.assert_array_equal(ref.selected, got.selected)
    for st_r, st_g in zip(ref.stages, got.stages):
        for opn in set(st_r.ops.counts) | set(st_g.ops.counts):
            assert st_r.ops[opn] == st_g.ops[opn]


def _run_sweep(backend: str):
    wk, wv, prefix, tails, queries = _workload(41)
    uncached = SofaEngine(CFG, backend=backend)
    flat = SofaEngine(CFG, backend=backend, cache_kind="flat")
    paged = SofaEngine(
        CFG,
        backend=backend,
        cache_kind="paged",
        cache_block_tokens=BLOCK_TOKENS,
        # Tight RAM budget: blocks spill between steps and reload on the
        # next lookup, so the parity below covers the spill round-trip.
        cache_bytes=4 * BLOCK_TOKENS * H * 8,
    )
    try:
        for step in range(N_STEPS + 1):
            q = queries[step]
            for session in range(N_SESSIONS):
                tokens = _session_tokens(prefix, tails, session, step)
                base = dict(tokens=tokens, q=q, wk=wk, wv=wv)
                futures = [
                    uncached.submit(AttentionRequest(**base)),
                    flat.submit(
                        AttentionRequest(**base, cache_key=("sess", session))
                    ),
                    paged.submit(
                        AttentionRequest(**base, cache_key=("sess", session))
                    ),
                ]
                for engine in (uncached, flat, paged):
                    engine.flush()
                ref = futures[0].result()
                _assert_result_identical(ref, futures[1].result())
                _assert_result_identical(ref, futures[2].result())
            if step == 0:
                # All sessions just submitted the identical prompt: their
                # entries are the same four blocks, all shared.
                assert paged.cache.stats.shared_blocks == PREFIX_LEN // BLOCK_TOKENS
        flat_stats, paged_stats = flat.cache.stats, paged.cache.stats
        # Spilling never changes a hit/miss decision: the two stores made
        # identical calls on identical traffic.
        assert paged_stats.hits == flat_stats.hits > 0
        assert paged_stats.misses == flat_stats.misses
        assert paged_stats.invalidations == flat_stats.invalidations
        assert paged_stats.rows_reused == flat_stats.rows_reused
        # Divergence was copy-on-write: the shared prefix blocks survived it.
        assert paged_stats.shared_blocks >= PREFIX_LEN // BLOCK_TOKENS
        # The budget forced the spill tier into the loop, and held.
        assert paged_stats.spill_loads > 0
        assert paged_stats.resident_bytes <= paged.cache.max_bytes
        assert paged_stats.evictions == 0  # spill, not data loss
    finally:
        for engine in (uncached, flat, paged):
            engine.shutdown()


@pytest.mark.paged_cache
@pytest.mark.parametrize("backend", ["sync", "threads"])
def test_differential_sweep_engine_and_threads(backend):
    _run_sweep(backend)


@pytest.mark.paged_cache
def test_oversized_entry_spills_instead_of_overshooting():
    """A single entry larger than ``max_bytes`` must not leave
    ``resident_bytes`` over budget (the flat store's silent overshoot):
    the paged store parks it in the spill tier and still serves it."""
    from repro.engine.cache import DecodeCacheEntry

    rng = make_rng(5)
    tokens = rng.normal(size=(64, H))
    entry = DecodeCacheEntry(
        tokens=tokens,
        tok_values=np.rint(tokens * 50).astype(np.int64),
        tok_scale=0.02,
        tok_max_abs=float(np.max(np.abs(tokens))),
        key_values=rng.integers(-500, 500, size=(64, D)).astype(np.int64),
        quantized=True,
    )
    cache = make_decode_cache(
        "paged", block_tokens=BLOCK_TOKENS, max_bytes=entry.nbytes // 4
    )
    cache.put("big", entry)
    assert cache.stats.resident_bytes <= cache.max_bytes
    assert cache.stats.spilled_bytes > 0
    assert len(cache) == 1  # spilled, not dropped
    got = cache.get("big")
    assert got.tokens.tobytes() == entry.tokens.tobytes()
    assert got.tok_values.tobytes() == entry.tok_values.tobytes()
    assert got.key_values.tobytes() == entry.key_values.tobytes()
    assert got.tokens.dtype == entry.tokens.dtype
    assert cache.stats.spill_loads > 0
    assert cache.stats.resident_bytes <= cache.max_bytes  # re-enforced
    cache.close()


@pytest.mark.paged_cache
def test_persisted_cache_survives_restart_bit_exactly(tmp_path):
    """persist() + a fresh engine over the same spill_dir: the restored
    entry serves a *hit* on the first post-restart step, bit-identical to
    the uncached computation."""
    wk, wv, prefix, tails, queries = _workload(43)
    spill = str(tmp_path / "cache")
    tokens = _session_tokens(prefix, tails, 0, 2)
    first = SofaEngine(
        CFG, cache_kind="paged", cache_block_tokens=BLOCK_TOKENS,
        cache_spill_dir=spill,
    )
    first.run([AttentionRequest(tokens=tokens, q=queries[2], wk=wk, wv=wv,
                                cache_key=("sess", 0))])
    assert first.stats.cache_misses == 1
    first.cache.persist()
    first.shutdown()  # leaves the explicit spill_dir intact

    grown = _session_tokens(prefix, tails, 0, 3)
    second = SofaEngine(
        CFG, cache_kind="paged", cache_block_tokens=BLOCK_TOKENS,
        cache_spill_dir=spill,
    )
    uncached = SofaEngine(CFG)
    try:
        got = second.run([AttentionRequest(tokens=grown, q=queries[3], wk=wk,
                                           wv=wv, cache_key=("sess", 0))])[0]
        ref = uncached.run([AttentionRequest(tokens=grown, q=queries[3],
                                             wk=wk, wv=wv)])[0]
        _assert_result_identical(ref, got)
        assert second.stats.cache_hits == 1  # restored state, no recompute
        assert second.stats.cache_misses == 0
        assert second.cache.stats.spill_loads > 0  # faulted in from disk
    finally:
        second.shutdown()
        uncached.shutdown()


@pytest.mark.paged_cache
def test_corrupt_spill_file_degrades_to_miss(tmp_path):
    """An unreadable spill file may only cost a recompute, never wrong bits
    or a crash: the entry demotes to a miss."""
    from repro.engine.cache import DecodeCacheEntry

    tokens = np.arange(18, dtype=np.float64).reshape(6, 3)
    entry = DecodeCacheEntry(
        tokens=tokens, tok_values=tokens.astype(np.int64), tok_scale=1.0,
        tok_max_abs=17.0, key_values=np.zeros((6, 2), dtype=np.int64),
        quantized=True,
    )
    cache = make_decode_cache(
        "paged", block_tokens=2, max_bytes=1, spill_dir=str(tmp_path)
    )
    cache.put("k", entry)
    assert cache.stats.spilled_blocks == 3
    for path in tmp_path.glob("*.npz"):
        path.write_bytes(b"garbage")
    assert cache.get("k") is None
    assert len(cache) == 0
    cache.close()


# ----------------------------------------------------------- cluster tier
@pytest.mark.cluster
@pytest.mark.paged_cache
def test_differential_sweep_cluster_tier():
    """The sweep across the process boundary: every worker runs a paged
    cache, outputs stay bit-identical to uncached single-engine serving,
    and the block-pool gauges aggregate into ClusterStats."""
    from repro.cluster import EngineCluster

    wk, wv, prefix, tails, queries = _workload(47)
    uncached = SofaEngine(CFG)
    refs = {}
    for step in range(N_STEPS + 1):
        for session in range(N_SESSIONS):
            tokens = _session_tokens(prefix, tails, session, step)
            refs[(step, session)] = uncached.run(
                [AttentionRequest(tokens=tokens, q=queries[step], wk=wk, wv=wv)]
            )[0]
    uncached.shutdown()

    with EngineCluster(
        n_workers=2,
        config=CFG,
        routing="cache_affinity",
        cache_kind="paged",
        cache_block_tokens=BLOCK_TOKENS,
        cache_bytes=4 * BLOCK_TOKENS * H * 8,
    ) as cluster:
        for step in range(N_STEPS + 1):
            futures = {
                session: cluster.submit(
                    AttentionRequest(
                        tokens=_session_tokens(prefix, tails, session, step),
                        q=queries[step], wk=wk, wv=wv,
                        cache_key=("sess", session),
                    )
                )
                for session in range(N_SESSIONS)
            }
            cluster.flush()
            for session, future in futures.items():
                _assert_result_identical(refs[(step, session)], future.result())
        merged = cluster.stats.cache
        assert merged.hits > 0
        assert merged.shared_blocks > 0  # sharing happened inside workers
        assert merged.spill_loads > 0  # and the spill tier was exercised


@pytest.mark.cluster
@pytest.mark.paged_cache
def test_cluster_surfaces_expirations_from_idle_sweep():
    """Satellite: TTL expiry must advance on wall-clock time on an *idle*
    worker (the periodic sweep), and surface in aggregated ClusterStats."""
    from repro.cluster import EngineCluster

    wk, wv, prefix, tails, queries = _workload(53)
    with EngineCluster(
        n_workers=1, config=CFG, cache_ttl_s=0.05
    ) as cluster:
        cluster.run([
            AttentionRequest(tokens=prefix, q=queries[0], wk=wk, wv=wv,
                             cache_key="abandoned")
        ])
        time.sleep(0.8)  # > ttl_s + the worker's idle sweep interval
        # A later, unrelated request carries the snapshot back; its own
        # lookups never touch the expired key.
        cluster.run([
            AttentionRequest(tokens=prefix, q=queries[1], wk=wk, wv=wv,
                             cache_key="fresh")
        ])
        assert cluster.stats.cache_expirations >= 1
