"""Tests for the analytic FLOPs/bytes profiler (Figs. 1 and 4 substrate)."""

import pytest

from repro.model.config import get_model
from repro.model.profiler import (
    attention_oi_vs_parallelism,
    attention_profile,
    breakdown_shares,
    ffn_profile,
    memory_footprint_bytes,
    profile_parts,
    qkv_profile,
)


def test_attention_flops_quadratic_in_seq():
    cfg = get_model("llama-7b")
    a1 = attention_profile(cfg, 1024).flops
    a2 = attention_profile(cfg, 2048).flops
    assert 3.9 < a2 / a1 < 4.1


def test_qkv_and_ffn_flops_linear_in_seq():
    cfg = get_model("llama-7b")
    for profile in (qkv_profile, ffn_profile):
        p1 = profile(cfg, 1024).flops
        p2 = profile(cfg, 2048).flops
        assert 1.9 < p2 / p1 < 2.1


def test_attention_dominates_at_long_sequences():
    """Fig. 1's headline: attention compute crosses 50% past ~32k tokens."""
    cfg = get_model("llama-7b")
    short = breakdown_shares(cfg, 4096)["attention"]["compute_share"]
    long = breakdown_shares(cfg, 131072)["attention"]["compute_share"]
    assert short < 0.5
    assert long > 0.75


def test_ffn_dominates_at_short_sequences():
    cfg = get_model("bert-base")
    shares = breakdown_shares(cfg, 512)
    assert shares["ffn"]["compute_share"] > shares["attention"]["compute_share"]


def test_shares_sum_to_one():
    cfg = get_model("gpt2")
    shares = breakdown_shares(cfg, 1024)
    assert sum(s["compute_share"] for s in shares.values()) == pytest.approx(1.0)
    assert sum(s["memory_share"] for s in shares.values()) == pytest.approx(1.0)


def test_mha_oi_well_below_ffn():
    """Fig. 4(b): MHA's operational intensity is a small fraction of FFN's."""
    for name in ("vit-base", "bert-base", "gpt2-large", "bloom-3b"):
        parts = profile_parts(get_model(name))
        ratio = parts["attention"].operational_intensity / parts["ffn"].operational_intensity
        assert ratio < 0.35


def test_oi_increases_with_parallelism():
    """Fig. 4(c): token parallelism raises attention OI monotonically."""
    cfg = get_model("bloom-3b")
    ois = [attention_oi_vs_parallelism(cfg, t) for t in (1, 2, 4, 8, 16, 32)]
    assert all(b > a for a, b in zip(ois, ois[1:]))


def test_oi_parallelism_rejects_zero():
    with pytest.raises(ValueError):
        attention_oi_vs_parallelism(get_model("gpt2"), 0)


def test_memory_footprint_grows_quadratically():
    cfg = get_model("llama-7b")
    f1 = memory_footprint_bytes(cfg, 65536)
    f2 = memory_footprint_bytes(cfg, 131072)
    assert f2 / f1 > 3.0  # S^2 term dominates at these lengths


def test_profile_parts_keys():
    parts = profile_parts(get_model("bert-base"))
    assert set(parts) == {"qkv", "attention", "ffn"}
