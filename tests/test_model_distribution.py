"""Tests for the Type-I/II/III attention-row taxonomy."""

import numpy as np
import pytest

from repro.model.distribution import (
    FAMILY_MIXTURES,
    RowType,
    classify_row,
    classify_rows,
)


def _row_with_spikes(rng, n, positions, height):
    row = rng.normal(0, 1.0, size=n)
    row[list(positions)] = height
    return row


def test_single_spike_is_type_i(rng):
    row = _row_with_spikes(rng, 256, [17], 15.0)
    assert classify_row(row).row_type is RowType.TYPE_I


def test_spread_dominants_are_type_ii(rng):
    positions = list(range(5, 256, 16))  # evenly spread
    row = _row_with_spikes(rng, 256, positions, 8.0)
    assert classify_row(row).row_type is RowType.TYPE_II


def test_concentrated_region_is_type_iii(rng):
    positions = list(range(100, 116))  # one tight region
    row = _row_with_spikes(rng, 256, positions, 8.0)
    assert classify_row(row).row_type is RowType.TYPE_III


def test_classify_rejects_short_rows():
    with pytest.raises(ValueError):
        classify_row(np.zeros(3))


def test_classify_rows_fractions_sum_to_one(rng):
    scores = rng.normal(size=(32, 128))
    shares = classify_rows(scores)
    assert sum(shares.values()) == pytest.approx(1.0)


def test_family_mixtures_are_distributions():
    for mix in FAMILY_MIXTURES.values():
        assert abs(sum(mix) - 1.0) < 0.02
        assert all(m >= 0 for m in mix)
        # Type-II predominates in every family (the DCE premise).
        assert mix[1] == max(mix)


def test_type_iii_rare_for_decoders():
    assert FAMILY_MIXTURES["nlp-decoder"][2] < 0.01


def test_dominant_count_reported(rng):
    row = _row_with_spikes(rng, 128, [5, 60], 15.0)
    result = classify_row(row)
    assert result.dominant_count <= 4
