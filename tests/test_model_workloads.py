"""Tests for the synthetic workload generators and the benchmark suite."""

import numpy as np
import pytest

from repro.attention.topk import exact_topk_indices
from repro.model.distribution import RowType, classify_rows
from repro.model.workloads import (
    BENCHMARK_SUITE,
    make_workload,
    synthetic_scores,
)
from repro.numerics.softmax import softmax
from repro.utils.rng import make_rng


def test_suite_has_twenty_benchmarks():
    assert len(BENCHMARK_SUITE) == 20


def test_suite_names_unique():
    names = [c.name for c in BENCHMARK_SUITE]
    assert len(set(names)) == len(names)


def test_suite_models_resolvable():
    from repro.model.config import get_model

    for case in BENCHMARK_SUITE:
        get_model(case.model)


def test_make_workload_shapes():
    wl = make_workload("bert-b/mrpc", n_queries=8, head_dim=32, seq_len=64, seed=1)
    assert wl.q.shape == (8, 32)
    assert wl.k.shape == (64, 32)
    assert wl.v.shape == (64, 32)
    assert wl.tokens.shape == (64, 64)


def test_make_workload_unknown_case():
    with pytest.raises(KeyError):
        make_workload("not/a-case")


def test_tokens_are_int8_range():
    wl = make_workload("gpt2/wikitext2", n_queries=4, head_dim=16, seq_len=64, seed=2)
    assert np.all(np.abs(wl.tokens) <= 127)
    assert np.allclose(wl.tokens, np.rint(wl.tokens))


def test_k_derives_from_tokens():
    """The prediction chain must be real: K == scaled tokens @ Wk."""
    wl = make_workload("bert-b/rte", n_queries=4, head_dim=16, seq_len=64, seed=3)
    prod = wl.tokens @ wl.wk
    nz = wl.k != 0
    ratio = prod[nz] / wl.k[nz]
    np.testing.assert_allclose(ratio, ratio.flat[0], rtol=1e-9)


def test_scores_concentrated():
    """Top 20% of keys must capture the bulk of softmax mass (the premise
    of top-k sparsity; calibrated against real attention behaviour)."""
    wl = make_workload("llama-7b/wikitext2", n_queries=16, head_dim=64, seq_len=256, seed=4)
    scores = wl.scores()
    probs = softmax(scores, axis=-1)
    k = int(0.2 * 256)
    idx = exact_topk_indices(scores, k)
    mass = np.mean([probs[i, idx[i]].sum() for i in range(16)])
    assert mass > 0.9


def test_selection_overlap_across_queries():
    """Shared dominant columns make per-query selections overlap (drives
    on-demand KV savings and RASS reuse)."""
    wl = make_workload("llama-7b/wikitext2", n_queries=32, head_dim=64, seq_len=256, seed=4)
    k = 20
    idx = exact_topk_indices(wl.scores(), k)
    union = np.unique(idx).size
    assert union < 0.5 * 32 * k  # heavy overlap vs disjoint selections


def test_synthetic_scores_family_mixture():
    rng = make_rng(6)
    scores = synthetic_scores(rng, 400, 256, "nlp-decoder")
    shares = classify_rows(scores)
    assert shares[RowType.TYPE_II] > 0.5
    assert shares[RowType.TYPE_III] < 0.1


def test_synthetic_scores_unknown_family():
    with pytest.raises(KeyError):
        synthetic_scores(make_rng(1), 4, 64, "unknown-family")


def test_synthetic_scores_shared_fraction_bounds():
    with pytest.raises(ValueError):
        synthetic_scores(make_rng(1), 4, 64, "vision", shared_column_fraction=1.5)


def test_workload_deterministic_by_seed():
    a = make_workload("bert-b/stsb", n_queries=4, head_dim=16, seq_len=64, seed=9)
    b = make_workload("bert-b/stsb", n_queries=4, head_dim=16, seq_len=64, seed=9)
    np.testing.assert_array_equal(a.tokens, b.tokens)
    np.testing.assert_allclose(a.q, b.q)


def test_top_k_respects_sparsity():
    case = next(c for c in BENCHMARK_SUITE if c.name == "bert-b/stsb")
    wl = make_workload(case, n_queries=4, head_dim=16, seq_len=None, seed=1)
    assert wl.top_k == pytest.approx(case.seq_len * (1 - case.sparsity), abs=1)
