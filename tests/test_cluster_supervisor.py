"""WorkerSupervisor tests: heartbeat liveness, bounded-backoff recovery,
in-flight replay, and the nasty edges.

Three layers:

* pure state-machine tests against a fake clock (no processes, no marker);
* local-transport integration (marker ``cluster``): kill -> auto-respawn ->
  replay -> post-respawn traffic, a worker that dies *during* respawn, a
  heartbeat timeout racing a delivered result, parking when no worker is
  left, and give-up semantics (failed futures, never hung ones);
* socket integration (marker ``socket``): a remote worker reconnecting
  under a fresh worker id, with the rendezvous remap staying minimal.
"""

import subprocess
import sys
import time

import numpy as np
import pytest

from repro.cluster import (
    EngineCluster,
    SupervisorConfig,
    WorkerSupervisor,
    WorkerUnavailableError,
    make_policy,
)
from repro.cluster.routing import RequestInfo
from repro.core.config import SofaConfig
from repro.engine import AttentionRequest, SofaEngine
from repro.utils.rng import make_rng

CFG = SofaConfig(tile_cols=16, top_k=0.25)

FAST = SupervisorConfig(
    heartbeat_interval_s=0.05,
    heartbeat_timeout_s=5.0,
    backoff_initial_s=0.02,
    backoff_max_s=0.5,
)


def _make_requests(seed: int, n: int, cache_keys: bool = False):
    rng = make_rng(seed)
    return [
        AttentionRequest(
            tokens=rng.integers(-100, 100, size=(32 if i % 2 else 48, 8)).astype(np.float64),
            q=rng.normal(size=(3, 8)),
            wk=rng.normal(size=(8, 8)),
            wv=rng.normal(size=(8, 8)),
            cache_key=f"seq-{i}" if cache_keys else None,
        )
        for i in range(n)
    ]


def _bit_identical(ref, got):
    return all(
        a.output.tobytes() == b.output.tobytes()
        and np.array_equal(a.selected, b.selected)
        for a, b in zip(ref, got)
    ) and len(ref) == len(got)


def _wait_for_recovery(cluster, before: int, timeout_s: float = 20.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        stats = cluster.stats
        if stats.n_respawns + stats.n_reconnects > before:
            return
        cluster.poll(0.05)
    raise AssertionError("supervision never recovered the worker")


# ---------------------------------------------------- pure state machine
def test_config_validation():
    with pytest.raises(ValueError, match="heartbeat_timeout_s"):
        SupervisorConfig(heartbeat_interval_s=1.0, heartbeat_timeout_s=0.0)
    with pytest.raises(ValueError, match="max_attempts"):
        SupervisorConfig(max_attempts=-1)
    with pytest.raises(ValueError, match="backoff_initial_s"):
        SupervisorConfig(backoff_initial_s=0.0)
    with pytest.raises(ValueError, match="backoff_max_s"):
        SupervisorConfig(backoff_initial_s=1.0, backoff_max_s=0.5)
    with pytest.raises(ValueError, match="ready_timeout_s"):
        SupervisorConfig(ready_timeout_s=0.0)


def test_heartbeat_cycle_with_fake_clock():
    cfg = SupervisorConfig(heartbeat_interval_s=1.0, heartbeat_timeout_s=3.0)
    sup = WorkerSupervisor(cfg, n_slots=1, now=0.0)
    assert sup.ping_due(0, 0.5) is False
    assert sup.ping_due(0, 1.0) is True
    sup.note_ping(0, 1.0)
    assert sup.ping_due(0, 1.5) is False
    assert sup.ping_due(0, 2.5) is False  # one probe at a time while unanswered
    assert sup.timed_out(0, 4.0) is False  # ping age 3.0 not > 3.0
    assert sup.timed_out(0, 4.5) is True
    sup.note_seen(0, 4.0)  # a pong (or any message) cancels the verdict
    assert sup.timed_out(0, 4.5) is False
    assert sup.ping_due(0, 4.5) is True  # answered: the next probe may go


def test_idle_pump_gap_never_kills_a_healthy_worker():
    """No pings are sent while the caller is not pumping; when pumping
    resumes after a long gap, the timeout clock must start at the *new*
    ping - stale last_seen alone is not a verdict."""
    cfg = SupervisorConfig(heartbeat_interval_s=1.0, heartbeat_timeout_s=3.0)
    sup = WorkerSupervisor(cfg, n_slots=1, now=0.0)
    # 100s of idle app time with zero supervision traffic
    assert sup.timed_out(0, 100.0) is False  # nothing outstanding
    assert sup.ping_due(0, 100.0) is True
    sup.note_ping(0, 100.0)
    assert sup.timed_out(0, 100.0) is False  # fresh probe, fresh clock
    assert sup.timed_out(0, 102.9) is False
    assert sup.timed_out(0, 103.5) is True  # genuinely unanswered now


def test_any_message_counts_as_proof_of_life():
    cfg = SupervisorConfig(heartbeat_interval_s=1.0, heartbeat_timeout_s=2.0)
    sup = WorkerSupervisor(cfg, n_slots=1, now=0.0)
    sup.note_ping(0, 1.0)
    sup.note_seen(0, 2.9)  # e.g. a result message, not a pong
    assert sup.timed_out(0, 4.0) is False  # no ping outstanding anymore


def test_backoff_doubles_and_caps_and_gives_up():
    cfg = SupervisorConfig(
        max_attempts=3, backoff_initial_s=1.0, backoff_max_s=3.0
    )
    sup = WorkerSupervisor(cfg, n_slots=1, now=0.0)
    sup.note_down(0, 10.0)
    assert not sup.retry_due(0, 10.5)  # first retry waits backoff_initial
    assert sup.retry_due(0, 11.0)
    sup.note_recovery_started(0, 11.0)
    sup.note_down(0, 11.5)  # died during respawn: attempt 1 consumed
    assert not sup.retry_due(0, 12.0)
    assert sup.retry_due(0, 11.5 + 2.0)  # backoff doubled to 2s
    sup.note_recovery_started(0, 14.0)
    sup.note_start_failed(0, 14.0)  # attempt 2 consumed
    assert sup.retry_due(0, 14.0 + 3.0)  # capped at backoff_max, not 4s
    sup.note_recovery_started(0, 17.0)
    sup.note_down(0, 17.5)  # attempt 3 consumed: budget exhausted
    assert sup.abandoned_slots() == [0]
    assert not sup.retry_due(0, 1e9)
    assert not sup.can_recover()


def test_ready_resets_the_attempt_budget():
    cfg = SupervisorConfig(max_attempts=2, backoff_initial_s=1.0)
    sup = WorkerSupervisor(cfg, n_slots=1, now=0.0)
    sup.note_down(0, 1.0)
    sup.note_recovery_started(0, 2.0)
    sup.note_down(0, 2.5)  # one failed attempt
    sup.note_recovery_started(0, 5.0)
    sup.note_ready(0, 5.5)  # success: budget back to full
    sup.note_down(0, 9.0)
    assert sup.can_recover()
    assert sup.retry_due(0, 10.0)  # backoff back at initial


def test_max_attempts_zero_disables_recovery():
    cfg = SupervisorConfig(max_attempts=0)
    sup = WorkerSupervisor(cfg, n_slots=2, now=0.0)
    sup.note_down(0, 1.0)
    assert not sup.can_recover()
    assert sup.abandoned_slots() == [0]


def test_heartbeats_disabled_never_time_out():
    cfg = SupervisorConfig(heartbeat_interval_s=0.0)
    sup = WorkerSupervisor(cfg, n_slots=1, now=0.0)
    assert not sup.ping_due(0, 1e9)
    assert not sup.timed_out(0, 1e9)


# ------------------------------------------------- rendezvous remap bound
def test_reconnect_with_fresh_id_remaps_minimally():
    """The satellite: a remote worker reconnecting under a *different*
    worker id keeps the remap minimal (rendezvous hashing): survivors
    never trade keys among themselves - a survivor's key either stays put
    or goes to the newcomer (its fair ~1/n share) - and the dead worker's
    keys spread over the new live set instead of triggering a full
    re-shard."""
    policy = make_policy("cache_affinity", 3)
    infos = [
        RequestInfo(shape_key=b"s", cache_key=f"seq-{i}".encode(), cost=1.0)
        for i in range(300)
    ]
    before = {i: policy.route(info, [0, 1, 2]) for i, info in enumerate(infos)}
    # worker 2 dies; its replacement reconnects as fresh id 3
    after = {i: policy.route(info, [0, 1, 3]) for i, info in enumerate(infos)}
    survivor_keys = [i for i, owner in before.items() if owner in (0, 1)]
    moved = [i for i in survivor_keys if after[i] != before[i]]
    # no survivor<->survivor churn: every moved key went to the newcomer
    assert all(after[i] == 3 for i in moved)
    # and only the newcomer's fair share moved, not a full re-shard
    # (expected ~1/3; a modulo re-hash would move ~2/3 of survivor keys)
    assert len(moved) <= len(survivor_keys) // 2
    orphaned = [i for i, owner in before.items() if owner == 2]
    assert orphaned  # the sweep actually exercised the dead worker
    assert {after[i] for i in orphaned} <= {0, 1, 3}
    assert any(after[i] == 3 for i in orphaned)  # fresh id takes real load


# --------------------------------------------------- local integration
@pytest.mark.cluster
def test_killed_worker_respawns_and_serves_new_traffic():
    requests = _make_requests(5, 8)
    with SofaEngine(CFG) as engine:
        ref = engine.run(requests)
    with EngineCluster(
        n_workers=2, config=CFG, routing="round_robin", supervisor=FAST
    ) as cluster:
        assert _bit_identical(ref, cluster.run(requests))
        cluster.crash_worker(0, hard=True)
        _wait_for_recovery(cluster, before=0)
        assert _bit_identical(ref, cluster.run(requests))
        stats = cluster.stats
        assert stats.n_respawns == 1
        assert stats.n_worker_failures == 1
        assert stats.n_errors == 0
        assert stats.live_workers == 2
        # both workers serve post-respawn round-robin traffic
        assert sum(1 for w in stats.workers if w.n_requests and w.alive) == 2


@pytest.mark.cluster
def test_inflight_replay_through_respawn():
    """Stall -> crash -> submit: the in-flight requests replay onto the
    survivor; the respawned worker then takes fresh traffic."""
    requests = _make_requests(6, 8)
    with SofaEngine(CFG) as engine:
        ref = engine.run(requests)
    with EngineCluster(
        n_workers=2, config=CFG, routing="round_robin", supervisor=FAST
    ) as cluster:
        cluster.stall_worker(0, 0.3)
        cluster.crash_worker(0, hard=False, wait=False)
        futures = cluster.submit_many(requests)
        cluster.flush()
        assert _bit_identical(ref, [f.result() for f in futures])
        stats = cluster.stats
        assert stats.n_rerouted >= 1
        assert stats.n_errors == 0
        _wait_for_recovery(cluster, before=0)
        assert _bit_identical(ref, cluster.run(requests))


@pytest.mark.cluster
def test_no_survivor_parks_and_replays_instead_of_failing():
    """With supervision, losing the *last* worker parks requests until the
    respawn, instead of failing them (the pre-supervision behaviour)."""
    requests = _make_requests(7, 3)
    with SofaEngine(CFG) as engine:
        ref = engine.run(requests)
    with EngineCluster(
        n_workers=1, config=CFG, supervisor=FAST
    ) as cluster:
        cluster.stall_worker(0, 0.3)
        cluster.crash_worker(0, hard=False, wait=False)
        futures = cluster.submit_many(requests)
        cluster.flush()  # blocks across the respawn, then replays
        assert _bit_identical(ref, [f.result() for f in futures])
        stats = cluster.stats
        assert stats.n_respawns == 1
        assert stats.n_errors == 0


@pytest.mark.cluster
def test_worker_dying_during_respawn_consumes_attempt_then_recovers():
    """The respawned worker itself dies before reporting ready: the
    supervisor burns one backoff attempt and the next one succeeds."""
    requests = _make_requests(8, 4)
    with SofaEngine(CFG) as engine:
        ref = engine.run(requests)
    with EngineCluster(
        n_workers=2, config=CFG, routing="round_robin", supervisor=FAST
    ) as cluster:
        cluster._transport.spawn_fault_budget = 1  # next spawn dies pre-ready
        cluster.crash_worker(0, hard=True)
        _wait_for_recovery(cluster, before=0)
        stats = cluster.stats
        assert stats.n_respawns == 1  # only the *successful* respawn counts
        assert stats.n_worker_failures >= 2  # crash + died-during-respawn
        assert cluster._transport.spawn_fault_budget == 0  # fault consumed
        assert _bit_identical(ref, cluster.run(requests))
        assert cluster.stats.n_errors == 0


@pytest.mark.cluster
def test_wedged_recovery_incarnation_times_out_and_retries():
    """A recovery incarnation whose link stays open but that never reports
    ready (wedged engine build / hung remote) must fail its attempt after
    ready_timeout_s so the slot keeps retrying instead of blocking
    forever."""
    requests = _make_requests(14, 4)
    with SofaEngine(CFG) as engine:
        ref = engine.run(requests)
    sup_cfg = SupervisorConfig(
        heartbeat_interval_s=0.05,
        heartbeat_timeout_s=5.0,
        backoff_initial_s=0.02,
        backoff_max_s=0.5,
        ready_timeout_s=0.2,
    )
    with EngineCluster(
        n_workers=2, config=CFG, routing="round_robin", supervisor=sup_cfg
    ) as cluster:
        cluster.crash_worker(0, hard=True)
        _wait_for_recovery(cluster, before=0)
        respawns_before = cluster.stats.n_respawns
        # Forge the wedge: make slot 0's current incarnation look like a
        # recovery that connected long ago and never reported ready.
        handle = cluster._slots[0]
        handle.ready = False
        handle.recovered = "respawn"
        handle.started_at = time.monotonic() - 100.0
        cluster._ready.discard(handle.worker_id)
        sup = cluster._supervisor
        sup.note_down(0, time.monotonic() - 100.0)
        sup.note_recovery_started(0, time.monotonic() - 100.0)
        # Supervision must kill the wedged incarnation, consume the
        # attempt, and bring up a working replacement.
        _wait_for_recovery(cluster, before=respawns_before)
        assert _bit_identical(ref, cluster.run(requests))
        stats = cluster.stats
        assert stats.n_respawns == respawns_before + 1
        assert stats.live_workers == 2
        assert stats.n_errors == 0


@pytest.mark.cluster
def test_give_up_fails_futures_instead_of_hanging():
    requests = _make_requests(9, 2)
    sup = SupervisorConfig(
        heartbeat_interval_s=0.05,
        heartbeat_timeout_s=5.0,
        max_attempts=2,
        backoff_initial_s=0.02,
        backoff_max_s=0.1,
    )
    with EngineCluster(n_workers=1, config=CFG, supervisor=sup) as cluster:
        cluster._transport.spawn_fault_budget = 10  # every respawn fails
        cluster.stall_worker(0, 0.2)
        cluster.crash_worker(0, hard=False, wait=False)
        futures = cluster.submit_many(requests)
        cluster.flush()  # must terminate: parked requests fail on give-up
        for future in futures:
            with pytest.raises(WorkerUnavailableError, match="exhausted"):
                future.result()
        stats = cluster.stats
        assert stats.n_respawns == 0
        assert stats.n_errors == len(requests)
        with pytest.raises(WorkerUnavailableError):
            cluster.submit(requests[0])


@pytest.mark.cluster
def test_result_delivery_beats_forced_heartbeat_timeout():
    """A result already shipped when the timeout verdict lands must be
    delivered (and prove the worker alive), not thrown away - the
    race the supervisor drains for before killing anything."""
    requests = _make_requests(10, 2)
    sup = SupervisorConfig(heartbeat_interval_s=30.0, heartbeat_timeout_s=30.0)
    with EngineCluster(n_workers=1, config=CFG, supervisor=sup) as cluster:
        future = cluster.submit(requests[0])
        time.sleep(1.0)  # worker finishes; result sits undelivered
        # White-box: forge "a ping went unanswered past the timeout"
        state = cluster._supervisor._slots[0]
        state.ping_outstanding = True
        state.last_ping = time.monotonic() - 60.0
        state.last_seen = time.monotonic() - 60.0
        cluster.poll(0.0)  # drains the racing result BEFORE the verdict
        assert future.done()
        assert future.result() is not None
        stats = cluster.stats
        assert stats.n_heartbeat_timeouts == 0  # delivery cancelled the verdict
        assert stats.n_errors == 0
        assert stats.live_workers == 1


@pytest.mark.cluster
def test_genuine_heartbeat_timeout_kills_reroutes_and_respawns():
    """A worker that is alive-but-silent (stalled) past the timeout is
    declared dead: its traffic re-routes, the slot respawns."""
    requests = _make_requests(11, 6)
    with SofaEngine(CFG) as engine:
        ref = engine.run(requests)
    sup = SupervisorConfig(
        heartbeat_interval_s=0.05,
        heartbeat_timeout_s=0.4,
        backoff_initial_s=0.02,
        backoff_max_s=0.5,
    )
    with EngineCluster(
        n_workers=2, config=CFG, routing="round_robin", supervisor=sup
    ) as cluster:
        # Let a first heartbeat round establish pings, then wedge worker 0
        # far past the timeout and submit traffic to both workers.
        cluster.poll(0.1)
        cluster.stall_worker(0, 8.0)
        futures = cluster.submit_many(requests)
        cluster.flush()  # survivor absorbs the wedged worker's share
        assert _bit_identical(ref, [f.result() for f in futures])
        stats = cluster.stats
        assert stats.n_heartbeat_timeouts == 1
        assert stats.n_errors == 0
        assert stats.n_rerouted >= 1
        _wait_for_recovery(cluster, before=0)
        assert _bit_identical(ref, cluster.run(requests))


# --------------------------------------------------- socket integration
@pytest.mark.socket
def test_remote_worker_reconnects_under_fresh_id():
    """Remote (externally started) worker: severing the link kills only
    the session; supervision reconnects to the surviving process and
    registers it under a fresh worker id."""
    requests = _make_requests(12, 6, cache_keys=True)
    with SofaEngine(CFG) as engine:
        ref = engine.run(requests)
    procs = []
    addrs = []
    try:
        for _ in range(2):
            proc = subprocess.Popen(
                [sys.executable, "-u", "-m", "repro.cluster.worker",
                 "--listen", "127.0.0.1:0"],
                stdout=subprocess.PIPE,
            )
            procs.append(proc)
            line = proc.stdout.readline().decode().strip()
            addrs.append(line.split(" ", 1)[1])
        with EngineCluster(
            config=CFG,
            transport="socket",
            routing="cache_affinity",
            worker_addresses=addrs,
            supervisor=FAST,
        ) as cluster:
            assert _bit_identical(ref, cluster.run(requests))
            cluster.crash_worker(0, hard=True, wait=False)  # severs the link
            _wait_for_recovery(cluster, before=0)
            assert _bit_identical(ref, cluster.run(requests))
            stats = cluster.stats
            assert stats.n_reconnects == 1
            assert stats.n_respawns == 0
            assert stats.n_errors == 0
            ids = {w.worker_id for w in stats.workers}
            assert ids == {0, 1, 2}  # fresh id 2 for the reconnected slot
            alive = {w.worker_id for w in stats.workers if w.alive}
            assert alive == {1, 2}
            # the remote *process* survived its severed session
            assert procs[0].poll() is None
    finally:
        for proc in procs:
            proc.kill()
            proc.wait()


@pytest.mark.socket
def test_spawned_socket_worker_respawns_as_new_process():
    requests = _make_requests(13, 4)
    with SofaEngine(CFG) as engine:
        ref = engine.run(requests)
    with EngineCluster(
        n_workers=2, config=CFG, transport="socket", supervisor=FAST
    ) as cluster:
        assert _bit_identical(ref, cluster.run(requests))
        cluster.crash_worker(1, hard=True)
        _wait_for_recovery(cluster, before=0)
        assert _bit_identical(ref, cluster.run(requests))
        stats = cluster.stats
        assert stats.n_respawns == 1  # we own spawned workers: a respawn
        assert stats.live_workers == 2
        assert stats.n_errors == 0
