"""Gateway HTTP tests: the differential sweep and the overload edges.

The standing contract crosses the wire intact: a gateway JSON response
must be bit-identical - outputs, selections, op counters - to serving
the same request through a plain sequential :class:`SofaEngine`, over
every backend shape (in-process engine, local cluster, socket cluster).
Overload behavior is exercised with the cluster's fault-injection stall
hook so queue buildup is deterministic: 429s carry Retry-After, full
queues answer 503 instead of hanging, and expired tickets shed.
"""

import asyncio
import json
from contextlib import asynccontextmanager

import numpy as np
import pytest

from repro.cluster import AsyncSofaClient, AutoscalerConfig, EngineCluster
from repro.core.config import SofaConfig
from repro.engine import SofaEngine
from repro.gateway import (
    GatewayClient,
    GatewayConfig,
    SofaGateway,
    TenantPolicy,
    request_from_json,
    result_to_json,
)
from repro.utils.rng import make_rng

pytestmark = pytest.mark.gateway

CFG = SofaConfig(tile_cols=16, top_k=0.25)


def _bodies(seed: int, n: int, **extra) -> list[dict]:
    rng = make_rng(seed)
    return [
        {
            "tokens": rng.integers(-100, 100, size=(32, 8)).astype(float).tolist(),
            "q": rng.normal(size=(2, 8)).tolist(),
            "wk": rng.normal(size=(8, 8)).tolist(),
            "wv": rng.normal(size=(8, 8)).tolist(),
            "tag": f"req-{seed}-{i}",
            **extra,
        }
        for i in range(n)
    ]


def _reference_json(bodies: list[dict]) -> list[dict]:
    """Serve the same requests on a sequential engine; JSON round-trip."""
    with SofaEngine(CFG) as engine:
        results = engine.run([request_from_json(b) for b in bodies])
    return [json.loads(json.dumps(result_to_json(r))) for r in results]


@asynccontextmanager
async def _gateway(backend, config=None, **gw_kwargs):
    async with AsyncSofaClient(backend) as client:
        async with SofaGateway(client, config=config, **gw_kwargs) as gw:
            async with GatewayClient("127.0.0.1", gw.port) as http:
                yield gw, client, http


async def _post_concurrently(port: int, bodies: list[dict]) -> list:
    """One connection per request, all in flight together."""

    async def one(body):
        async with GatewayClient("127.0.0.1", port) as http:
            return await http.attention(body)

    return await asyncio.gather(*(one(b) for b in bodies))


def _make_backend(kind: str):
    if kind == "engine":
        return SofaEngine(CFG)
    if kind == "local":
        return EngineCluster(n_workers=2, config=CFG)
    assert kind == "socket"
    return EngineCluster(n_workers=2, config=CFG, transport="socket")


# --------------------------------------------------------------- parity sweep
@pytest.mark.parametrize("kind", ["engine", "local", "socket"])
def test_differential_sweep_bit_parity(kind):
    bodies = _bodies(seed=11, n=6)
    expected = _reference_json(bodies)

    async def main():
        async with _gateway(_make_backend(kind)) as (_gw, _client, http):
            responses = []
            for body in bodies:
                status, _, resp = await http.attention(body)
                assert status == 200, resp
                responses.append(resp)
            return responses

    got = asyncio.run(main())
    # Floats crossed the wire through repr-faithful JSON: every value -
    # outputs, selections, op counters - must match the sequential
    # engine's result exactly, not approximately.
    assert got == expected


def test_concurrent_posts_keep_parity():
    bodies = _bodies(seed=12, n=8)
    expected = {b["tag"]: r for b, r in zip(bodies, _reference_json(bodies))}

    async def main():
        async with _gateway(EngineCluster(n_workers=2, config=CFG)) as (
            _gw, _client, http,
        ):
            del http  # concurrency needs one connection per request
            return await _post_concurrently(_gw.port, bodies)

    for body, (status, _, resp) in zip(bodies, asyncio.run(main())):
        assert status == 200
        assert resp == expected[body["tag"]]


# ------------------------------------------------------------------ endpoints
def test_healthz_and_metrics_and_routing():
    async def main():
        async with _gateway(EngineCluster(n_workers=2, config=CFG)) as (
            gw, _client, http,
        ):
            status, health = await http.healthz()
            assert status == 200
            assert health["status"] == "ok"
            assert health["backend"] == "cluster"
            assert len(health["live_workers"]) == 2
            assert health["n_scale_ups"] == 0

            for body in _bodies(seed=13, n=3):
                status, _, _resp = await http.attention(body)
                assert status == 200
            text = await http.metrics()
            assert "# TYPE sofa_gateway_requests_total counter" in text
            assert "sofa_gateway_requests_total 3" in text
            assert "sofa_gateway_completed_total 3" in text
            assert "sofa_gateway_queue_depth 0" in text
            assert "sofa_gateway_request_latency_seconds_count 3" in text

            status, _, resp = await http.request("GET", "/nope")
            assert status == 404
            status, _, resp = await http.request("GET", "/v1/attention")
            assert status == 405
            status, _, resp = await http.request(
                "POST", "/v1/attention", b"not json"
            )
            assert status == 400
            status, _, resp = await http.request(
                "POST", "/v1/attention", json.dumps({"tokens": [[1.0]]}).encode()
            )
            assert status == 400  # missing q/wk/wv

    asyncio.run(main())


def test_healthz_on_plain_engine_backend():
    async def main():
        async with _gateway(SofaEngine(CFG)) as (_gw, _client, http):
            status, health = await http.healthz()
            assert status == 200
            assert health == {"status": "ok", "backend": "engine"}

    asyncio.run(main())


# ------------------------------------------------------------------- overload
def test_tenant_bucket_exhaustion_returns_429_with_retry_after():
    config = GatewayConfig(
        tenants={"limited": TenantPolicy(rate=0.5, burst=1.0)},
    )

    async def main():
        async with _gateway(
            EngineCluster(n_workers=1, config=CFG), config=config
        ) as (_gw, _client, http):
            first, second = _bodies(seed=14, n=2, tenant="limited")
            status, _, _resp = await http.attention(first)
            assert status == 200
            status, headers, resp = await http.attention(second)
            assert status == 429
            assert resp == {"error": "rate_limited"}
            assert float(headers["retry-after"]) > 0.0
            # Rate limits isolate tenants: another tenant sails through.
            other = _bodies(seed=15, n=1, tenant="spacious")[0]
            status, _, _resp = await http.attention(other)
            assert status == 200

    asyncio.run(main())


def test_full_queue_sheds_with_503_not_unbounded_growth():
    config = GatewayConfig(max_queue=2, overbook_factor=1.0)

    async def main():
        cluster = EngineCluster(n_workers=1, config=CFG)
        async with _gateway(
            cluster, config=config, max_inflight=1
        ) as (gw, _client, _http):
            cluster.stall_worker(cluster.live_workers[0], 1.0)
            outcomes = await asyncio.wait_for(
                _post_concurrently(gw.port, _bodies(seed=16, n=8)),
                timeout=60.0,
            )
            statuses = sorted(s for s, _, _ in outcomes)
            # The bounded queue admitted a handful; everything else was
            # answered 503 immediately instead of queueing unboundedly.
            assert statuses.count(200) >= 2
            assert statuses.count(503) >= 4
            assert set(statuses) <= {200, 503}
            for status, headers, resp in outcomes:
                if status == 503:
                    assert resp == {"error": "queue_full"}
                    assert float(headers["retry-after"]) > 0.0

    asyncio.run(main())


def test_expired_queue_sheds_and_never_hangs():
    config = GatewayConfig(max_queue=8)

    async def main():
        cluster = EngineCluster(n_workers=1, config=CFG)
        async with _gateway(
            cluster, config=config, max_inflight=1
        ) as (gw, _client, _http):
            # Stall the only worker past every queued deadline: the queue
            # fills with doomed tickets, and the wait_for proves the shed
            # path resolves every future instead of wedging dispatch.
            cluster.stall_worker(cluster.live_workers[0], 1.0)
            bodies = _bodies(seed=17, n=5, deadline_ms=200.0)
            outcomes = await asyncio.wait_for(
                _post_concurrently(gw.port, bodies), timeout=60.0
            )
            statuses = [s for s, _, _ in outcomes]
            assert statuses.count(200) >= 1  # the dispatched one survived
            assert statuses.count(503) >= 3  # the stalled queue shed
            for status, _, resp in outcomes:
                if status == 503:
                    assert resp == {"error": "deadline_expired"}

    asyncio.run(main())


def test_zero_deadline_request_is_shed_at_the_door():
    async def main():
        async with _gateway(EngineCluster(n_workers=1, config=CFG)) as (
            _gw, _client, http,
        ):
            body = _bodies(seed=18, n=1, deadline_ms=0)[0]
            status, _, resp = await http.attention(body)
            assert status == 503
            assert resp == {"error": "deadline_expired"}

    asyncio.run(main())


# ------------------------------------------------------- autoscale end-to-end
def test_overload_through_gateway_triggers_autoscale():
    scaler = AutoscalerConfig(
        min_workers=1, max_workers=2, queue_high=2.0, queue_low=0.25,
        hold_up_s=0.0, hold_down_s=5.0, cooldown_s=0.0,
    )

    async def main():
        cluster = EngineCluster(
            n_workers=1, config=CFG, supervisor=True, autoscaler=scaler
        )
        roomy = GatewayConfig(
            default_tenant=TenantPolicy(rate=1000.0, burst=100.0)
        )
        async with _gateway(cluster, config=roomy) as (gw, _client, http):
            outcomes = await asyncio.wait_for(
                _post_concurrently(gw.port, _bodies(seed=19, n=40)),
                timeout=120.0,
            )
            assert all(s == 200 for s, _, _ in outcomes)
            status, health = await http.healthz()
            assert status == 200
            assert health["n_scale_ups"] >= 1

    asyncio.run(main())
