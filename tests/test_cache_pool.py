"""Property suite for the paged cache's block-pool invariants.

Hypothesis drives random put/get/invalidate traffic (with sequences that
extend each other, so prefix sharing actually occurs) against a shadow
model holding the exact arrays each key should serve, and checks after
every operation that:

* refcounts are exactly the number of references from live entries (so
  they can never go negative or leak);
* every pooled block's bytes equal the corresponding rows of *every*
  entry referencing it (shared blocks are bit-identical across owners);
* copy-on-write never mutates a shared block - growing one sequence
  leaves its prefix-sharing sibling's bits untouched;
* spill -> load round-trips are bit-exact (the same properties hold under
  a RAM budget tiny enough that every lookup faults blocks from disk);
* the RAM budget is a hard invariant (``resident_bytes <= max_bytes``).

Plus pinned (non-random) tests for the TTL boundary: an entry idle
*exactly* ``ttl_s`` stays, one idle any longer drops - on both stores.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.cache import DecodeCacheEntry, make_decode_cache
from repro.engine.paged import PagedDecodeCache

H, DK = 3, 2
MAX_ROWS = 40

_KEYS = ("s0", "s1", "s2", "s3")
_STREAMS = 3  # token streams; same stream => shared prefix across keys


def _stream(stream_id: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The deterministic row stream entries of ``stream_id`` are cut from."""
    rng = np.random.default_rng(1000 + stream_id)
    tokens = rng.integers(-90, 90, size=(MAX_ROWS, H)).astype(np.float64)
    tok_values = np.rint(tokens / 0.75).astype(np.int64)
    key_values = rng.integers(-400, 400, size=(MAX_ROWS, DK)).astype(np.int64)
    return tokens, tok_values, key_values


def _entry(stream_id: int, length: int) -> DecodeCacheEntry:
    tokens, tok_values, key_values = _stream(stream_id)
    return DecodeCacheEntry(
        tokens=tokens[:length].copy(),
        tok_values=tok_values[:length].copy(),
        tok_scale=0.75,
        tok_max_abs=90.0,
        key_values=key_values[:length].copy(),
        quantized=True,
    )


def _assert_entries_equal(got: DecodeCacheEntry, expected: DecodeCacheEntry):
    assert got.tokens.tobytes() == expected.tokens.tobytes()
    assert got.tok_values.tobytes() == expected.tok_values.tobytes()
    assert got.key_values.tobytes() == expected.key_values.tobytes()
    assert got.tokens.dtype == expected.tokens.dtype
    assert got.tokens.shape == expected.tokens.shape
    assert got.tok_scale == expected.tok_scale
    assert got.tok_max_abs == expected.tok_max_abs
    assert got.quantized == expected.quantized


def _check_invariants(cache: PagedDecodeCache, shadow: dict):
    # Refcount consistency: exactly the references from live entries,
    # never negative, never dangling, never leaked.
    refs: dict[str, int] = {}
    for entry in cache._entries.values():
        for content_hash in entry.block_hashes:
            refs[content_hash] = refs.get(content_hash, 0) + 1
    assert set(refs) == set(cache._blocks)
    for content_hash, block in cache._blocks.items():
        assert block.refcount == refs[content_hash] >= 1
    # Shared blocks bit-identical across owners: every entry's chain must
    # reproduce that entry's shadow rows exactly, block by block.
    for key, entry in list(cache._entries.items()):
        expected = shadow[key]
        row = 0
        for content_hash in entry.block_hashes:
            block = cache._blocks[content_hash]
            assert cache._load_block(block)  # spill -> load is bit-exact too
            for array, source in zip(
                block.arrays,
                (expected.tokens, expected.tok_values, expected.key_values),
            ):
                assert array.tobytes() == source[row : row + block.n_rows].tobytes()
            row += block.n_rows
        assert row == expected.seq_len
    # Budget is a hard invariant (gauges refreshed by the get()s below too).
    for key, expected in shadow.items():
        got = cache.get(key)
        assert got is not None  # no eviction configured: nothing may vanish
        _assert_entries_equal(got, expected)
        if cache.max_bytes is not None:
            assert cache.stats.resident_bytes <= cache.max_bytes


_op = st.one_of(
    st.tuples(
        st.just("put"),
        st.sampled_from(_KEYS),
        st.integers(0, _STREAMS - 1),
        st.integers(1, MAX_ROWS),
    ),
    st.tuples(st.just("invalidate"), st.sampled_from(_KEYS)),
    st.tuples(st.just("get"), st.sampled_from(_KEYS)),
)


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(_op, min_size=1, max_size=25),
    block_tokens=st.sampled_from([1, 3, 7]),
    spill=st.booleans(),
)
@pytest.mark.paged_cache
def test_block_pool_invariants_hold_under_random_traffic(ops, block_tokens, spill):
    cache = PagedDecodeCache(
        block_tokens=block_tokens,
        max_entries=len(_KEYS) + 1,  # never evict: every live key must serve
        max_bytes=256 if spill else None,  # tiny: force constant spill traffic
    )
    shadow: dict = {}
    try:
        for op in ops:
            if op[0] == "put":
                _, key, stream_id, length = op
                entry = _entry(stream_id, length)
                cache.put(key, entry)
                shadow[key] = entry
            elif op[0] == "invalidate":
                _, key = op
                assert cache.invalidate(key) == (key in shadow)
                shadow.pop(key, None)
            else:
                _, key = op
                got = cache.get(key)
                if key in shadow:
                    _assert_entries_equal(got, shadow[key])
                else:
                    assert got is None
            _check_invariants(cache, shadow)
        cache.clear()
        assert cache.n_blocks == 0 and len(cache) == 0
        assert cache.stats.resident_bytes == 0
    finally:
        cache.close()


@pytest.mark.paged_cache
def test_cow_growth_never_mutates_a_shared_block():
    """Two sequences share a prefix; growing (and re-putting) one must
    leave the other's served bits untouched - blocks are immutable and
    divergence only ever allocates new tail blocks."""
    cache = PagedDecodeCache(block_tokens=4)
    a0 = _entry(0, 12)
    cache.put("a", a0)
    cache.put("b", _entry(0, 12))  # same stream: fully shared chain
    assert cache.stats.shared_blocks == 3
    # Diverge "a": same 12-row prefix, different tail rows.
    tokens, tok_values, key_values = _stream(0)
    diverged = DecodeCacheEntry(
        tokens=np.concatenate([tokens[:12], tokens[20:24] + 1.0]),
        tok_values=np.concatenate([tok_values[:12], tok_values[20:24] + 1]),
        tok_scale=0.75,
        tok_max_abs=91.0,
        key_values=np.concatenate([key_values[:12], key_values[20:24]]),
        quantized=True,
    )
    cache.put("a", diverged)
    assert cache.stats.shared_blocks == 3  # the prefix blocks, still shared
    _assert_entries_equal(cache.get("b"), a0)  # sibling bits untouched
    got_a = cache.get("a")
    assert got_a.tokens.tobytes() == diverged.tokens.tobytes()
    # Mutating a served entry's arrays must not reach the pool either.
    got_a.tokens[:] = -1.0
    _assert_entries_equal(cache.get("b"), a0)
    cache.close()


@pytest.mark.paged_cache
def test_refcounts_drop_to_zero_and_blocks_free():
    cache = PagedDecodeCache(block_tokens=4)
    cache.put("a", _entry(1, 8))
    cache.put("b", _entry(1, 8))
    assert cache.n_blocks == 2 and cache.stats.shared_blocks == 2
    cache.invalidate("a")
    assert cache.n_blocks == 2 and cache.stats.shared_blocks == 0
    cache.invalidate("b")
    assert cache.n_blocks == 0
    assert cache.stats.resident_bytes == 0
    cache.close()


# -------------------------------------------------------------- TTL boundary
@pytest.mark.parametrize("kind", ["flat", "paged"])
def test_ttl_boundary_idle_exactly_ttl_stays(kind):
    """Pinned boundary: the keep rule is ``idle <= ttl_s``, so an entry
    idle *exactly* ``ttl_s`` survives and anything past it drops - on
    both stores, via lazy sweeping and explicit sweep_expired alike."""
    now = [0.0]
    cache = make_decode_cache(kind, ttl_s=10.0, clock=lambda: now[0])
    cache.put("k", _entry(0, 6))
    now[0] = 10.0  # idle == ttl_s exactly
    assert cache.sweep_expired() == 0
    assert cache.get("k") is not None  # (refreshes last_used to 10.0)
    now[0] = float(np.nextafter(20.0, np.inf))  # one ulp past idle == ttl_s
    assert cache.sweep_expired() == 1
    assert cache.get("k") is None
    assert cache.stats.expirations == 1
    cache.close()
