"""Tests for DLZS log-domain prediction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.config import DlzsConfig
from repro.core.dlzs import (
    DlzsPredictor,
    dlzs_matmul,
    dlzs_relative_error,
    vanilla_lz_matmul,
)
from repro.attention.topk import exact_topk_indices, topk_recall
from repro.utils.rng import make_rng

int8_matrices = hnp.arrays(
    np.int64, (6, 8), elements=st.integers(-127, 127)
)
int8_matrices_b = hnp.arrays(
    np.int64, (8, 5), elements=st.integers(-127, 127)
)


def test_dlzs_sign_correctness():
    """With single-element inner dim the approximate product's sign is exact."""
    a = np.array([[3], [-5]])
    b = np.array([[7, -2]])
    res = dlzs_matmul(a, b, width=8)
    assert np.sign(res.values[0, 0]) == 1
    assert np.sign(res.values[0, 1]) == -1
    assert np.sign(res.values[1, 0]) == -1
    assert np.sign(res.values[1, 1]) == 1


def test_dlzs_zero_operand_gives_zero():
    a = np.array([[5]])
    b = np.array([[0]])
    assert dlzs_matmul(a, b, width=8).values[0, 0] == 0


@given(int8_matrices, int8_matrices_b)
@settings(max_examples=40, deadline=None)
def test_dlzs_overestimates_within_2x(a, b):
    """Element products satisfy |x*y| <= |approx| < 2|x*y| (one-hot rounds up),
    so the row sums are bounded by 2x the exact magnitude sums."""
    res = dlzs_matmul(a, b, width=8)
    # compare magnitude sums: sum |approx products| <= 2 * sum |exact products|
    bound = 2 * (np.abs(a) @ np.abs(b))
    assert np.all(np.abs(res.values) <= bound + 1e-9)
    assert np.all(np.abs(res.values) >= 0)


def test_dlzs_more_accurate_than_vanilla():
    """Fig. 7(c): keeping one operand exact halves the error."""
    rng = make_rng(31)
    a = rng.integers(-127, 128, size=(24, 32))
    b = rng.integers(-127, 128, size=(32, 24))
    exact = (a @ b).astype(np.float64)
    dlzs = dlzs_matmul(a, b, width=8).values.astype(np.float64)
    vanilla = vanilla_lz_matmul(a, b, width=8).values.astype(np.float64)
    err_dlzs = dlzs_relative_error(dlzs, exact)
    err_vanilla = dlzs_relative_error(vanilla, exact)
    assert err_dlzs < err_vanilla


def test_dlzs_uses_half_the_converters():
    rng = make_rng(32)
    a = rng.integers(-127, 128, size=(8, 16))
    b = rng.integers(1, 128, size=(16, 8))
    dlzs_ops = dlzs_matmul(a, b, width=8).ops
    vanilla_ops = vanilla_lz_matmul(a, b, width=8).ops
    assert dlzs_ops["lzc"] == b.size
    assert vanilla_ops["lzc"] == a.size + b.size


def test_dlzs_no_multiplications():
    rng = make_rng(33)
    a = rng.integers(-127, 128, size=(4, 8))
    b = rng.integers(-127, 128, size=(8, 4))
    ops = dlzs_matmul(a, b, width=8).ops
    assert ops["mul"] == 0
    assert ops["shift"] > 0


def test_dlzs_shape_validation():
    with pytest.raises(ValueError):
        dlzs_matmul(np.zeros((2, 3), dtype=np.int64), np.zeros((4, 2), dtype=np.int64), 8)


def test_predictor_preserves_topk_ranking(medium_workload):
    """The end goal: DLZS scores rank the true top-k keys well."""
    wl = medium_workload
    predictor = DlzsPredictor(wl.wk)
    pred = predictor.predict(wl.tokens, wl.q)
    k = 32
    sel = exact_topk_indices(pred.a_hat, k)
    recall = topk_recall(sel, wl.scores(), k)
    assert recall > 0.6


def test_predictor_beats_chance(medium_workload):
    wl = medium_workload
    predictor = DlzsPredictor(wl.wk)
    pred = predictor.predict(wl.tokens, wl.q)
    k = 32
    sel = exact_topk_indices(pred.a_hat, k)
    chance = k / wl.seq_len
    assert topk_recall(sel, wl.scores(), k) > 3 * chance


def test_predictor_stored_weight_bits():
    """LZ storage: sign + 4-bit code instead of the full 8-bit weight."""
    predictor = DlzsPredictor(np.ones((8, 4), dtype=np.int64), DlzsConfig())
    assert predictor.stored_weight_bits <= 5


def test_predictor_no_lzc_in_key_phase(medium_workload):
    """Weights were pre-converted offline - phase 1.1 must be converter-free."""
    wl = medium_workload
    predictor = DlzsPredictor(wl.wk)
    res = predictor.predict_keys(wl.tokens)
    assert res.ops["lzc"] == 0


def test_predictor_rejects_bad_wk():
    with pytest.raises(ValueError):
        DlzsPredictor(np.zeros(4))


def test_prediction_result_scale_positive(medium_workload):
    wl = medium_workload
    pred = DlzsPredictor(wl.wk).predict(wl.tokens, wl.q)
    assert pred.scale > 0


def test_relative_error_scale_free():
    rng = make_rng(34)
    exact = rng.normal(size=64)
    approx = 3.7 * exact
    assert dlzs_relative_error(approx, exact) < 1e-10
