"""Shared fixtures: deterministic RNG, calibrated workloads, leak guards."""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.model.workloads import make_workload
from repro.utils.rng import make_rng


@pytest.fixture(autouse=True)
def _no_stray_worker_processes():
    """Process-leak guard: no test may leave child processes behind.

    Cluster tests spawn real engine worker processes (``multiprocessing``
    children for the local transport, standalone listening subprocesses
    for the socket transport); a leaked worker would outlive the suite,
    and a leaked *listener* would additionally hold a bound port.
    Leftovers are killed so the rest of the suite stays usable, then the
    test is failed.  (CI adds an out-of-process sweep per job for leaks
    this in-suite guard cannot see, e.g. workers orphaned by a killed
    pytest.)
    """
    yield
    from repro.cluster.transport import reap_spawned_workers

    leftover = multiprocessing.active_children()
    for process in leftover:
        process.kill()
        process.join(timeout=5.0)
    leaked_listeners = reap_spawned_workers()
    assert not leftover, f"test leaked child processes: {leftover}"
    assert not leaked_listeners, (
        f"test leaked socket worker subprocesses (bound listeners): "
        f"{[p.pid for p in leaked_listeners]}"
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return make_rng(1234)


@pytest.fixture(scope="session")
def small_workload():
    """A small calibrated attention workload shared by fast tests."""
    return make_workload("bert-b/mrpc", n_queries=8, head_dim=32, seq_len=128, seed=3)


@pytest.fixture(scope="session")
def medium_workload():
    """A medium workload for pipeline/suite-level tests."""
    return make_workload("llama-7b/wikitext2", n_queries=16, head_dim=64, seq_len=256, seed=5)
