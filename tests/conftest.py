"""Shared fixtures: deterministic RNG and a small calibrated workload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.workloads import make_workload
from repro.utils.rng import make_rng


@pytest.fixture
def rng() -> np.random.Generator:
    return make_rng(1234)


@pytest.fixture(scope="session")
def small_workload():
    """A small calibrated attention workload shared by fast tests."""
    return make_workload("bert-b/mrpc", n_queries=8, head_dim=32, seq_len=128, seed=3)


@pytest.fixture(scope="session")
def medium_workload():
    """A medium workload for pipeline/suite-level tests."""
    return make_workload("llama-7b/wikitext2", n_queries=16, head_dim=64, seq_len=256, seed=5)
