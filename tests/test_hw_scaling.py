"""Tests for technology scaling rules (Table II footnote)."""

import pytest

from repro.hw.scaling import (
    REFERENCE_NODE,
    TechnologyNode,
    scale_area,
    scale_energy_per_op,
    scale_frequency,
    scale_power,
    scale_to_28nm,
)


def test_identity_at_reference_node():
    out = scale_to_28nm(freq_hz=1e9, power_w=1.0, area_mm2=2.0, node=REFERENCE_NODE)
    assert out == {"freq_hz": 1e9, "power_w": 1.0, "area_mm2": 2.0}


def test_40nm_scaling_factors():
    node = TechnologyNode(40.0, 1.0)
    s = 40.0 / 28.0
    assert scale_frequency(1e9, node) == pytest.approx(1e9 * s**2)
    assert scale_power(1.0, node) == pytest.approx(1.0 / s)
    assert scale_area(2.0, node) == pytest.approx(2.0 / s**2)


def test_voltage_scaling_quadratic():
    node = TechnologyNode(28.0, 0.8)
    assert scale_power(1.0, node) == pytest.approx((1.0 / 0.8) ** 2)


def test_smaller_node_power_grows_toward_28():
    """Scaling a 22 nm design UP to 28 nm increases its power figure."""
    node = TechnologyNode(22.0, 1.0)
    assert scale_power(1.0, node) > 1.0


def test_energy_scaling_consistent_with_power_over_freq():
    node = TechnologyNode(45.0, 1.0)
    expected = scale_power(1.0, node) / (scale_frequency(1.0, node))
    assert scale_energy_per_op(1.0, node) == pytest.approx(expected)


def test_invalid_nodes_rejected():
    with pytest.raises(ValueError):
        TechnologyNode(0.0, 1.0)
    with pytest.raises(ValueError):
        TechnologyNode(28.0, -0.1)
