"""Tests for the cross-stage coordinated tiled pipeline (SOFA end to end)."""

import numpy as np
import pytest

from repro.core.config import SofaConfig
from repro.core.pipeline import SofaAttention, sofa_attention
from repro.attention.topk import topk_recall


def _operator(wl, tile_cols=32, top_k=16):
    cfg = SofaConfig(tile_cols=tile_cols, top_k=top_k)
    return SofaAttention(wl.wk, wl.wv, cfg)


def _scale(wl):
    # the workload folds its normalization into k_scale/v_scale
    return wl.fold_scale()


def test_output_matches_masked_reference(medium_workload):
    """SU-FA over the SADS selection must equal exact masked attention."""
    wl = medium_workload
    op = _operator(wl)
    s = _scale(wl)
    res = op(wl.tokens, wl.q, k_scale=s, v_scale=s)
    ref = op.reference_output(wl.tokens, wl.q, res.selected, k_scale=s, v_scale=s)
    np.testing.assert_allclose(res.output, ref, atol=1e-9)


def test_selection_quality(medium_workload):
    wl = medium_workload
    op = _operator(wl, top_k=32)
    s = _scale(wl)
    res = op(wl.tokens, wl.q, k_scale=s, v_scale=s)
    assert topk_recall(res.selected, wl.scores(), 32) > 0.6


def test_three_stage_traces(medium_workload):
    wl = medium_workload
    res = _operator(wl)(wl.tokens, wl.q)
    names = [st.name for st in res.stages]
    assert names == ["dlzs_prediction", "sads_topk", "sufa_formal"]


def test_sort_stage_no_dram_traffic(medium_workload):
    """The coordinated tiling keeps Pre-Atten tiles on chip."""
    wl = medium_workload
    res = _operator(wl)(wl.tokens, wl.q)
    sort_stage = res.stages[1]
    assert sort_stage.dram_bytes == 0.0


def test_total_ops_accumulates(medium_workload):
    wl = medium_workload
    res = _operator(wl)(wl.tokens, wl.q)
    assert res.total_ops.normalized() == pytest.approx(
        sum(st.ops.normalized() for st in res.stages)
    )


def test_prediction_shift_only(medium_workload):
    wl = medium_workload
    res = _operator(wl)(wl.tokens, wl.q)
    pred = res.stages[0].ops
    assert pred["mul"] == 0
    assert pred["shift"] > 0


def test_functional_wrapper_equivalent(medium_workload):
    wl = medium_workload
    cfg = SofaConfig(tile_cols=32, top_k=16)
    a = sofa_attention(wl.tokens, wl.q, wl.wk, wl.wv, cfg)
    b = SofaAttention(wl.wk, wl.wv, cfg)(wl.tokens, wl.q)
    np.testing.assert_allclose(a.output, b.output)


def test_fractional_top_k(medium_workload):
    wl = medium_workload
    cfg = SofaConfig(tile_cols=32, top_k=0.1)
    res = SofaAttention(wl.wk, wl.wv, cfg)(wl.tokens, wl.q)
    expected_k = round(0.1 * wl.seq_len)
    assert res.selected.shape[1] == expected_k


def test_top_k_out_of_range_rejected(medium_workload):
    wl = medium_workload
    cfg = SofaConfig(tile_cols=32, top_k=10_000)
    with pytest.raises(ValueError):
        SofaAttention(wl.wk, wl.wv, cfg)(wl.tokens, wl.q)


def test_reference_mask_shape(medium_workload):
    wl = medium_workload
    res = _operator(wl)(wl.tokens, wl.q)
    mask = res.reference_mask
    assert mask.shape == (wl.n_queries, wl.seq_len)
    np.testing.assert_array_equal(mask.sum(axis=1), 16)


def test_config_tile_math():
    cfg = SofaConfig(tile_cols=64)
    assert cfg.n_tiles(256) == 4
    assert cfg.n_tiles(257) == 5
    assert cfg.resolve_top_k(100) == 15  # 0.15 default fraction


def test_assurance_triggers_bounded(medium_workload):
    """DLZS misprediction rate must stay low on calibrated workloads."""
    wl = medium_workload
    res = _operator(wl, top_k=32)(wl.tokens, wl.q)
    trigger_rate = res.assurance_triggers / res.selected.size
    assert trigger_rate < 0.2
