"""Edge-case hardening for the cross-stage pipeline and the batched engine.

Covers the corners a serving deployment actually hits: sequence lengths that
do not divide the tile width, select-all budgets (k == S), single-query
decode steps (T == 1), and single-tile sequences - asserting correctness
against the exact masked reference plus the StageTrace memory invariants.
"""

import numpy as np
import pytest

from repro.attention.reference import masked_attention
from repro.core.config import SofaConfig
from repro.core.pipeline import SofaAttention
from repro.engine import BatchedSofaAttention
from repro.utils.rng import make_rng


def _head(rng, s, h=16, d=16, t=4):
    wk = rng.normal(size=(h, d))
    wv = rng.normal(size=(h, d))
    tokens = rng.integers(-80, 80, size=(s, h)).astype(np.float64)
    q = rng.normal(size=(t, d))
    return wk, wv, tokens, q


def _check_trace_invariants(res, s):
    """StageTrace invariants every run must uphold (the Fig. 20(a) story)."""
    names = [st.name for st in res.stages]
    assert names == ["dlzs_prediction", "sads_topk", "sufa_formal"]
    for st in res.stages:
        assert st.dram_bytes >= 0.0
        assert st.sram_peak_bytes > 0.0
        assert st.ops.total_raw() > 0.0
    # the coordinated tiling keeps Pre-Atten tiles on chip: no sort DRAM
    assert res.stages[1].dram_bytes == 0.0
    # prediction streams every token exactly once: traffic grows with S
    assert res.stages[0].dram_bytes >= s
    assert res.total_dram_bytes == pytest.approx(sum(st.dram_bytes for st in res.stages))


def _check_exact_over_selection(op, tokens, q, res):
    ref = op.reference_output(tokens, q, res.selected)
    np.testing.assert_allclose(res.output, ref, atol=1e-9)


def test_seq_len_not_divisible_by_tile_cols():
    """S % Bc != 0: the last ragged tile must behave like any other."""
    rng = make_rng(300)
    s = 100  # tile_cols=32 -> tiles of 25 columns via the segment grid
    wk, wv, tokens, q = _head(rng, s)
    op = SofaAttention(wk, wv, SofaConfig(tile_cols=32, top_k=20))
    res = op(tokens, q)
    assert res.selected.shape == (4, 20)
    assert np.unique(res.selected, axis=1).shape == res.selected.shape
    assert res.selected.max() < s
    _check_exact_over_selection(op, tokens, q, res)
    _check_trace_invariants(res, s)


def test_select_all_budget_equals_dense():
    """k == S (select-all): output must equal dense attention over all keys."""
    rng = make_rng(301)
    s = 48
    wk, wv, tokens, q = _head(rng, s)
    op = SofaAttention(wk, wv, SofaConfig(tile_cols=16, top_k=s))
    res = op(tokens, q)
    # every key selected, once
    assert sorted(map(int, res.selected[0])) == list(range(s))
    k_mat = tokens @ wk
    v_mat = tokens @ wv
    dense = masked_attention(q, k_mat, v_mat, np.ones((4, s), dtype=bool))
    np.testing.assert_allclose(res.output, dense, atol=1e-9)
    _check_trace_invariants(res, s)


def test_top_k_beyond_seq_len_rejected():
    rng = make_rng(302)
    wk, wv, tokens, q = _head(rng, 32)
    op = SofaAttention(wk, wv, SofaConfig(tile_cols=16, top_k=33))
    with pytest.raises(ValueError):
        op(tokens, q)


def test_single_query_decode_step():
    """T == 1: the autoregressive decode shape."""
    rng = make_rng(303)
    s = 80
    wk, wv, tokens, q = _head(rng, s, t=1)
    op = SofaAttention(wk, wv, SofaConfig(tile_cols=16, top_k=0.2))
    res = op(tokens, q)
    assert res.output.shape == (1, 16)
    assert res.selected.shape == (1, 16)
    _check_exact_over_selection(op, tokens, q, res)
    _check_trace_invariants(res, s)


def test_single_tile_sequence():
    """S <= Bc: one tile, one SADS segment, degenerate but exact."""
    rng = make_rng(304)
    s = 24
    wk, wv, tokens, q = _head(rng, s)
    op = SofaAttention(wk, wv, SofaConfig(tile_cols=64, top_k=6))
    res = op(tokens, q)
    # a single segment is an exact top-k: selection descending in true score
    _check_exact_over_selection(op, tokens, q, res)
    _check_trace_invariants(res, s)


def test_batched_edge_shapes_match_sequential():
    """The engine handles every edge shape exactly like the per-head path."""
    cases = [
        dict(s=100, t=4, cfg=SofaConfig(tile_cols=32, top_k=20)),  # ragged tile
        dict(s=48, t=4, cfg=SofaConfig(tile_cols=16, top_k=48)),  # select-all
        dict(s=80, t=1, cfg=SofaConfig(tile_cols=16, top_k=0.2)),  # decode step
        dict(s=24, t=4, cfg=SofaConfig(tile_cols=64, top_k=6)),  # single tile
    ]
    for case_no, case in enumerate(cases):
        rng = make_rng(310 + case_no)
        n = 3
        wk = rng.normal(size=(n, 16, 16))
        wv = rng.normal(size=(n, 16, 16))
        tokens = rng.integers(-80, 80, size=(n, case["s"], 16)).astype(np.float64)
        q = rng.normal(size=(n, case["t"], 16))
        batched = BatchedSofaAttention(wk, wv, case["cfg"])(tokens, q)
        for i in range(n):
            seq = SofaAttention(wk[i], wv[i], case["cfg"])(tokens[i], q[i])
            np.testing.assert_array_equal(seq.selected, batched.per_head[i].selected)
            assert seq.output.tobytes() == batched.per_head[i].output.tobytes()
            _check_trace_invariants(batched.per_head[i], case["s"])


def test_select_all_over_uneven_tiles_keeps_every_key():
    """k == S with ragged tiles: quota overflow must redistribute, not drop.

    With S=10 and Bc=3 the segment widths are uneven (2/3/2/3) while the
    even quota split wants 3/3/2/2 - the narrow segments' overflow has to
    land in the wider ones so all S keys are still selected.
    """
    rng = make_rng(321)
    s = 10
    wk, wv, tokens, q = _head(rng, s, t=3)
    op = SofaAttention(wk, wv, SofaConfig(tile_cols=3, top_k=s))
    res = op(tokens, q)
    assert res.selected.shape == (3, s)
    for row in res.selected:
        assert sorted(map(int, row)) == list(range(s))
    _check_exact_over_selection(op, tokens, q, res)


def test_degenerate_two_token_sequence():
    """The smallest meaningful problem: S=2, k=1, T=1."""
    rng = make_rng(320)
    wk, wv, tokens, q = _head(rng, 2, t=1)
    op = SofaAttention(wk, wv, SofaConfig(tile_cols=8, top_k=1))
    res = op(tokens, q)
    assert res.selected.shape == (1, 1)
    _check_exact_over_selection(op, tokens, q, res)
