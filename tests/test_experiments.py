"""Tests for the experiment harness and the regenerated paper artifacts.

The cheap experiments run fully; the suite-backed ones run in quick mode and
assert the *shape* claims of the paper (who wins, rough factors, orderings).
"""

import pytest

from repro.experiments.harness import REGISTRY, ExperimentResult, get_experiment
from repro.experiments.suite import geomean, measure_case, suite_cases


def test_registry_covers_design_index():
    expected = {
        "fig1", "fig3", "fig4", "fig5", "fig8", "fig15", "fig17", "fig18",
        "fig19", "fig20", "fig21", "table1", "table2", "table3", "table4",
    }
    assert set(REGISTRY) == expected


def test_unknown_experiment_raises():
    with pytest.raises(KeyError):
        get_experiment("fig99")


def test_result_render_contains_rows():
    res = get_experiment("table4")()
    text = res.render()
    assert "core" in text and "DRAM" in text
    assert "headline:" in text


# ------------------------------------------------------- cheap experiments
def test_fig1_attention_dominates_long_context():
    res = get_experiment("fig1")()
    assert res.headline["llama7b_attention_compute_share_at_128k"] > 75.0
    assert res.headline["llama7b_compute_crossover_seq"] <= 65536


def test_fig3_mat_share_band():
    res = get_experiment("fig3")()
    assert res.headline["average_mat_share_at_scale_pct"] > 35.0


def test_fig4_oi_claims():
    res = get_experiment("fig4")()
    assert res.headline["mean_mha_oi_fraction_of_ffn"] < 0.35
    assert res.headline["bloom3b_oi_gain_t128_over_t1"] > 10.0


def test_fig5_fa2_overhead_grows():
    res = get_experiment("fig5")(quick=True)
    # fine tiling at any S must cost more than coarse tiling
    by_key = {(r[0], r[1]): r[5] for r in res.rows}
    seqs = sorted({r[0] for r in res.rows})
    for s in seqs:
        assert by_key[(s, 4)] > by_key[(s, 64)]


def test_fig8_type12_dominates():
    res = get_experiment("fig8")(quick=True)
    assert res.headline["min_type12_share_pct"] > 90.0


def test_fig15_paper_example():
    res = get_experiment("fig15")(quick=True)
    assert res.headline["paper_example_reduction_pct"] == pytest.approx(33.3, abs=0.1)


def test_table2_advantages_near_paper():
    res = get_experiment("table2")()
    assert res.headline["mean_device_eff_advantage"] == pytest.approx(15.8, rel=0.15)
    assert res.headline["mean_area_eff_advantage"] == pytest.approx(10.3, rel=0.15)
    assert res.headline["mean_latency_advantage"] == pytest.approx(9.3, rel=0.15)


def test_table3_totals():
    res = get_experiment("table3")()
    assert res.headline["total_area_mm2"] == pytest.approx(5.69, abs=0.01)


def test_table4_overall_power():
    res = get_experiment("table4")()
    assert res.headline["overall_power_w"] == pytest.approx(3.40, abs=0.02)


# --------------------------------------------------- suite-backed (quick)
@pytest.fixture(scope="module")
def fig17():
    return get_experiment("fig17")(quick=True)


def test_fig17_reductions_ordered(fig17):
    h = fig17.headline
    assert h["dlzs_reduction_pct"] < h["dlzs_sads_reduction_pct"] <= h["sofa_reduction_pct"]


def test_fig17_magnitudes(fig17):
    """Reduction magnitudes in the paper's neighbourhood (18/25/28%)."""
    assert 10 < fig17.headline["dlzs_reduction_pct"] < 45
    assert 15 < fig17.headline["sofa_reduction_pct"] < 55


def test_fig18_reductions_grow_with_loss():
    res = get_experiment("fig18")(quick=True)
    h = res.headline
    assert (
        h["atten_reduction_pct_loss0"]
        < h["atten_reduction_pct_loss1"]
        < h["atten_reduction_pct_loss2"]
    )
    assert h["atten_reduction_pct_loss2"] > 80
    assert h["qkv_atten_reduction_pct_loss0"] < h["atten_reduction_pct_loss0"]


def test_fig19_speedup_shape():
    res = get_experiment("fig19")(quick=True)
    h = res.headline
    assert h["sofa_speedup_loss0"] < h["sofa_speedup_loss2"]
    assert 5.0 < h["sofa_speedup_loss2"] < 14.0  # paper: 9.5x
    assert 2.0 < h["sofa_over_lp_fa2"] < 4.5  # paper: 3.01x


def test_fig20_memory_and_energy_shape():
    res = get_experiment("fig20")(quick=True)
    h = res.headline
    assert h["rass_memory_reduction_pct"] < h["sofa_memory_reduction_pct"]
    assert h["sofa_memory_reduction_pct"] > 70  # paper: 79%
    assert h["energy_gain_loss0"] < h["energy_gain_loss2"]
    assert 35 < h["energy_gain_loss2"] < 110  # paper: 71.5x


def test_fig21_engine_gains_positive():
    res = get_experiment("fig21")(quick=True)
    h = res.headline
    for dev in ("gpu", "tpu"):
        for engine in ("dlzs", "sads", "sufa", "rass"):
            assert h[f"{dev}_{engine}_gain"] > 0.9
    assert h["gpu_total_gain"] > h["gpu_software_gain"]


# ------------------------------------------------------------- suite level
def test_measured_loss_tracks_budget():
    """The proxy loss at each budget must stay in the right neighbourhood."""
    cases = suite_cases(quick=True)
    for budget, hi in ((0.0, 1.5), (2.0, 4.5)):
        losses = [measure_case(c.name, budget).measured_loss_pct for c in cases]
        assert max(losses) < hi


def test_recall_stays_high_across_suite():
    for c in suite_cases(quick=True):
        assert measure_case(c.name, 2.0).recall > 0.7


def test_geomean_helper():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])


def test_experiment_result_dataclass():
    res = ExperimentResult("x", "t", ["a"], [[1]])
    assert "t" in res.render()
