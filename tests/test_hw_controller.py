"""Tests for the tiled pipeline controller."""

import pytest

from repro.hw.scheduler.controller import (
    PipelineTiming,
    StageLatencies,
    TiledPipelineController,
)


def test_single_tile_no_overlap():
    ctl = TiledPipelineController()
    timing = ctl.uniform_timing(StageLatencies(10, 20, 30), 1)
    assert timing.pipelined_cycles == timing.serial_cycles == 60


def test_balanced_pipeline_approaches_3x():
    """With many balanced tiles the 3-stage pipeline approaches 3x."""
    ctl = TiledPipelineController()
    timing = ctl.uniform_timing(StageLatencies(10, 10, 10), 100)
    assert timing.speedup > 2.8


def test_bottleneck_stage_limits_throughput():
    ctl = TiledPipelineController()
    timing = ctl.uniform_timing(StageLatencies(1, 50, 1), 40)
    # steady state is paced by the 50-cycle sort stage
    assert timing.pipelined_cycles == pytest.approx(1 + 40 * 50 + 1, rel=0.05)


def test_heterogeneous_tiles_exact_recurrence():
    ctl = TiledPipelineController()
    tiles = [StageLatencies(5, 1, 1), StageLatencies(1, 5, 1)]
    timing = ctl.timing(tiles)
    # tile0: p@5, s@6, f@7 ; tile1: p@6, s@11, f@12
    assert timing.pipelined_cycles == 12
    assert timing.serial_cycles == 14


def test_pipelined_never_slower_than_serial():
    ctl = TiledPipelineController()
    for lat in [(3, 7, 2), (10, 1, 1), (1, 1, 10)]:
        timing = ctl.uniform_timing(StageLatencies(*lat), 16)
        assert timing.pipelined_cycles <= timing.serial_cycles


def test_empty_tiles_rejected():
    with pytest.raises(ValueError):
        TiledPipelineController().timing([])
    with pytest.raises(ValueError):
        TiledPipelineController().uniform_timing(StageLatencies(1, 1, 1), 0)


def test_speedup_property():
    timing = PipelineTiming(pipelined_cycles=50, serial_cycles=150, n_tiles=10)
    assert timing.speedup == 3.0
